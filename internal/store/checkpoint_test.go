package store

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"warp/internal/store/storefs"
)

// writeSections writes one checkpoint: dirty sections get fresh
// payloads, the rest are carried forward when the store allows it.
func writeSections(t *testing.T, s *Store, payloads map[string]string, dirty map[string]bool) CheckpointStats {
	t.Helper()
	names := make([]string, 0, len(payloads))
	for name := range payloads {
		names = append(names, name)
	}
	// Deterministic order keeps the test's expectations simple.
	for i := 0; i < len(names); i++ {
		for j := i + 1; j < len(names); j++ {
			if names[j] < names[i] {
				names[i], names[j] = names[j], names[i]
			}
		}
	}
	err := s.WriteCheckpoint(func(cw *CheckpointWriter) error {
		for _, name := range names {
			if !dirty[name] && cw.Keep(name) {
				continue
			}
			cw.Section(name).String(payloads[name])
		}
		return nil
	})
	if err != nil {
		t.Fatalf("WriteCheckpoint: %v", err)
	}
	return s.LastCheckpoint()
}

func readSectionString(t *testing.T, rec *Recovery, name string) string {
	t.Helper()
	dec, err := rec.ReadSection(name)
	if err != nil {
		t.Fatalf("ReadSection(%s): %v", name, err)
	}
	return dec.String()
}

// TestIncrementalCheckpointWritesOnlyDirtySections is the store-level
// acceptance property: after a base checkpoint, a checkpoint with k
// dirty sections writes exactly those k into its delta file and carries
// the rest forward; recovery stitches base + delta back together.
func TestIncrementalCheckpointWritesOnlyDirtySections(t *testing.T) {
	dir := t.TempDir()
	opts := testOpts()
	opts.CompactEvery = 100 // keep compaction out of this test
	s, _ := mustOpen(t, dir, opts)

	payloads := map[string]string{}
	for i := 0; i < 6; i++ {
		payloads[fmt.Sprintf("table/%d", i)] = fmt.Sprintf("v1-table-%d", i)
	}
	st := writeSections(t, s, payloads, nil)
	if !st.Full || len(st.Written) != 6 || len(st.Kept) != 0 {
		t.Fatalf("base checkpoint: %+v", st)
	}

	// Touch 2 of 6 sections.
	payloads["table/1"] = "v2-table-1"
	payloads["table/4"] = "v2-table-4"
	st = writeSections(t, s, payloads, map[string]bool{"table/1": true, "table/4": true})
	if st.Full {
		t.Fatal("second checkpoint should be incremental")
	}
	if got := strings.Join(st.Written, ","); got != "table/1,table/4" {
		t.Fatalf("dirty checkpoint wrote %q, want exactly the 2 dirty sections", got)
	}
	if len(st.Kept) != 4 {
		t.Fatalf("kept %d sections, want 4", len(st.Kept))
	}

	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, rec := mustOpen(t, dir, opts)
	defer s2.Close()
	if !rec.Manifest {
		t.Fatal("no checkpoint recovered")
	}
	for i := 0; i < 6; i++ {
		name := fmt.Sprintf("table/%d", i)
		if got := readSectionString(t, rec, name); got != payloads[name] {
			t.Fatalf("section %s = %q, want %q", name, got, payloads[name])
		}
	}
}

// TestDroppedSectionDisappears: a section the builder neither writes
// nor keeps ceases to exist — the manifest is the source of truth.
func TestDroppedSectionDisappears(t *testing.T) {
	dir := t.TempDir()
	opts := testOpts()
	opts.CompactEvery = 100
	s, _ := mustOpen(t, dir, opts)
	writeSections(t, s, map[string]string{"a": "a1", "b": "b1"}, nil)
	writeSections(t, s, map[string]string{"a": "a1"}, nil) // b dropped
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, rec := mustOpen(t, dir, opts)
	defer s2.Close()
	if rec.HasSection("b") {
		t.Fatal("dropped section still present after recovery")
	}
	if got := readSectionString(t, rec, "a"); got != "a1" {
		t.Fatalf("section a = %q", got)
	}
}

// TestCompactionBoundsDeltaChain: after CompactEvery incremental
// checkpoints the store forces a full rewrite and the prune reclaims
// every older delta file.
func TestCompactionBoundsDeltaChain(t *testing.T) {
	dir := t.TempDir()
	opts := testOpts()
	opts.CompactEvery = 3
	s, _ := mustOpen(t, dir, opts)

	payloads := map[string]string{"hot": "h0", "cold": "c0"}
	writeSections(t, s, payloads, nil) // full (no previous manifest)
	sawFull := false
	for i := 1; i <= 5; i++ {
		payloads["hot"] = fmt.Sprintf("h%d", i)
		st := writeSections(t, s, payloads, map[string]bool{"hot": true})
		if st.Full && i >= 3 {
			sawFull = true
		}
	}
	if !sawFull {
		t.Fatal("no compacting checkpoint within CompactEvery+2 rounds")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Only the files the final manifest references may remain.
	entries, _ := os.ReadDir(dir)
	ckpts, manifests := 0, 0
	for _, e := range entries {
		var seq int64
		if parseSeqName(e.Name(), "ckpt-", ".sec", &seq) {
			ckpts++
		}
		if parseSeqName(e.Name(), "manifest-", ".mf", &seq) {
			manifests++
		}
	}
	if manifests != 1 {
		t.Fatalf("%d manifests on disk, want 1", manifests)
	}
	if ckpts > 2 {
		t.Fatalf("%d delta files on disk after compaction, want the live chain only", ckpts)
	}

	s2, rec := mustOpen(t, dir, opts)
	defer s2.Close()
	if got := readSectionString(t, rec, "hot"); got != "h5" {
		t.Fatalf("hot = %q, want h5", got)
	}
	if got := readSectionString(t, rec, "cold"); got != "c0" {
		t.Fatalf("cold = %q, want c0", got)
	}
}

// TestCorruptNewestManifestFallsBack: a corrupt newest manifest falls
// back to the previous checkpoint, capping WAL replay there.
func TestCorruptNewestManifestFallsBack(t *testing.T) {
	dir := t.TempDir()
	opts := testOpts()
	opts.CompactEvery = 100
	s, _ := mustOpen(t, dir, opts)
	writeSections(t, s, map[string]string{"st": "first"}, nil)
	if err := s.Append(1, []byte("tail-1")); err != nil {
		t.Fatal(err)
	}
	// Second checkpoint; then corrupt its manifest. The first
	// checkpoint's manifest was pruned, so recreate the situation by
	// corrupting before prune can see it: write checkpoint 2 into a
	// copy instead.
	snap := filepath.Join(t.TempDir(), "copy")
	copyDir(t, dir, snap)
	writeSections(t, s, map[string]string{"st": "second"}, map[string]bool{"st": true})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// In the live dir, corrupt the newest manifest and restore the older
	// one from the pre-checkpoint copy (prune removed it).
	entries, _ := os.ReadDir(dir)
	var newest int64
	for _, e := range entries {
		var seq int64
		if parseSeqName(e.Name(), "manifest-", ".mf", &seq) && seq > newest {
			newest = seq
		}
	}
	path := manifestPath(dir, newest)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	oldEntries, _ := os.ReadDir(snap)
	for _, e := range oldEntries {
		var seq int64
		var id int
		ok := parseSeqName(e.Name(), "manifest-", ".mf", &seq) ||
			parseSeqName(e.Name(), "ckpt-", ".sec", &seq) ||
			parseSegName(e.Name(), &id, &seq)
		if !ok {
			continue
		}
		if _, err := os.Stat(filepath.Join(dir, e.Name())); err == nil {
			continue
		}
		b, err := os.ReadFile(filepath.Join(snap, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, e.Name()), b, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	s2, rec := mustOpen(t, dir, opts)
	defer s2.Close()
	if !rec.Manifest || !rec.SnapshotFallback {
		t.Fatalf("expected fallback recovery, got manifest=%v fallback=%v", rec.Manifest, rec.SnapshotFallback)
	}
	if got := readSectionString(t, rec, "st"); got != "first" {
		t.Fatalf("fell back to %q, want the first checkpoint", got)
	}
}

// TestCheckpointBuildErrorLeavesStoreUsable: a failing build must not
// install anything and the store must keep accepting appends and a
// subsequent checkpoint.
func TestCheckpointBuildErrorLeavesStoreUsable(t *testing.T) {
	dir := t.TempDir()
	s, _ := mustOpen(t, dir, testOpts())
	if err := s.Append(1, []byte("rec")); err != nil {
		t.Fatal(err)
	}
	wantErr := fmt.Errorf("builder exploded")
	err := s.WriteCheckpoint(func(cw *CheckpointWriter) error {
		cw.Section("partial").String("junk")
		return wantErr
	})
	if err == nil {
		t.Fatal("build error swallowed")
	}
	if err := s.Append(1, []byte("rec2")); err != nil {
		t.Fatal(err)
	}
	checkpointOne(t, s, "good", "good-state")
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, rec := mustOpen(t, dir, testOpts())
	defer s2.Close()
	if rec.HasSection("partial") {
		t.Fatal("aborted checkpoint's section leaked into recovery")
	}
	if got := readSectionString(t, rec, "good"); got != "good-state" {
		t.Fatalf("good = %q", got)
	}
}

// FuzzSnapshotSection feeds arbitrary bytes through the checkpoint
// section walker: it must never panic, never allocate beyond the file's
// size, and never surface a section whose chunk stream fails its
// recorded CRC or length.
func FuzzSnapshotSection(f *testing.F) {
	seed := func(sections map[string]string) []byte {
		dir := f.TempDir()
		path := filepath.Join(dir, "seed.sec")
		w, err := newSectionFileWriter(storefs.OS, path)
		if err != nil {
			f.Fatal(err)
		}
		for name, payload := range sections {
			if err := w.begin(name); err != nil {
				f.Fatal(err)
			}
			if err := w.chunk([]byte(payload)); err != nil {
				f.Fatal(err)
			}
		}
		if err := w.finish(); err != nil {
			f.Fatal(err)
		}
		data, _ := os.ReadFile(path)
		return data
	}
	f.Add(seed(map[string]string{"a": "hello", "b": "world"}))
	f.Add(seed(map[string]string{}))
	f.Add([]byte{})
	f.Add([]byte("WARPSEC1 not really a section file"))
	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		path := filepath.Join(dir, "fuzz.sec")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Skip()
		}
		offsets, err := validateSectionFile(storefs.OS, path)
		if err != nil {
			return // rejecting is always allowed
		}
		// Everything the walker accepted must read back cleanly.
		for name, off := range offsets {
			if _, err := readSectionPayload(storefs.OS, path, off); err != nil {
				t.Fatalf("validated section %q failed to read: %v", name, err)
			}
		}
	})
}
