package sqldb

import (
	"fmt"
	"sync"
	"testing"
)

func TestStmtCacheHitReturnsSameHandle(t *testing.T) {
	c := NewStmtCache(8)
	a, err := c.Get("SELECT 1")
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.Get("SELECT 1")
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("cache miss on identical source")
	}
	if hits, misses := c.Stats(); hits != 1 || misses != 1 {
		t.Fatalf("stats = %d hits / %d misses, want 1/1", hits, misses)
	}
	if a.Canonical() != a.Stmt.String() {
		t.Fatalf("canonical %q != Stmt.String() %q", a.Canonical(), a.Stmt.String())
	}
	if a.Source() != "SELECT 1" {
		t.Fatalf("source = %q", a.Source())
	}
}

func TestStmtCacheParseErrorNotCached(t *testing.T) {
	c := NewStmtCache(8)
	if _, err := c.Get("SELEC nope"); err == nil {
		t.Fatal("expected parse error")
	}
	if c.Len() != 0 {
		t.Fatalf("cache holds %d entries after parse error", c.Len())
	}
}

func TestStmtCacheLRUEviction(t *testing.T) {
	c := NewStmtCache(3)
	for i := 0; i < 3; i++ {
		if _, err := c.Get(fmt.Sprintf("SELECT %d", i)); err != nil {
			t.Fatal(err)
		}
	}
	// Touch 0 so 1 becomes the LRU, then insert a fourth entry.
	if _, err := c.Get("SELECT 0"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get("SELECT 3"); err != nil {
		t.Fatal(err)
	}
	if c.Len() != 3 {
		t.Fatalf("len = %d, want 3", c.Len())
	}
	hitsBefore, _ := c.Stats()
	if _, err := c.Get("SELECT 1"); err != nil { // evicted: re-parse
		t.Fatal(err)
	}
	if hits, _ := c.Stats(); hits != hitsBefore {
		t.Fatal("evicted entry served from cache")
	}
	hitsBefore, _ = c.Stats()
	for _, keep := range []string{"SELECT 0", "SELECT 3"} {
		if _, err := c.Get(keep); err != nil {
			t.Fatal(err)
		}
	}
	if hits, _ := c.Stats(); hits != hitsBefore+2 {
		t.Fatal("recently used entries were evicted")
	}
}

// TestPlanInvalidationOnDDL: a cached statement's compiled plan must be
// recompiled after every kind of DDL, so it cannot read stale column
// ordinals, a dropped table's rows, or miss a new index.
func TestPlanInvalidationOnDDL(t *testing.T) {
	db := Open()
	mustExec(t, db, "CREATE TABLE t (id INTEGER PRIMARY KEY, grp INTEGER, val INTEGER)")
	mustExec(t, db, "INSERT INTO t (id, grp, val) VALUES (1, 10, 100), (2, 20, 200)")

	sel := "SELECT val FROM t WHERE id = ?"
	res, err := db.Exec(sel, Int(1))
	if err != nil || res.FirstValue().AsInt() != 100 {
		t.Fatalf("warm-up select: %v %v", res, err)
	}

	// CREATE INDEX: the cached plan's scan decision must flip to the
	// index and still see the same rows.
	epoch := db.Epoch()
	mustExec(t, db, "CREATE INDEX idx_id ON t (id)")
	if db.Epoch() == epoch {
		t.Fatal("CREATE INDEX did not bump the DDL epoch")
	}
	res, err = db.Exec(sel, Int(2))
	if err != nil || res.FirstValue().AsInt() != 200 {
		t.Fatalf("select after CREATE INDEX: %v %v", res, err)
	}

	// ALTER TABLE ADD COLUMN: ordinals shift for SELECT *; the cached
	// star plan must include the new column.
	starRes, err := db.Exec("SELECT * FROM t WHERE id = 1")
	if err != nil || len(starRes.Columns) != 3 {
		t.Fatalf("star select: %v %v", starRes, err)
	}
	epoch = db.Epoch()
	mustExec(t, db, "ALTER TABLE t ADD COLUMN note TEXT DEFAULT 'x'")
	if db.Epoch() == epoch {
		t.Fatal("ALTER TABLE did not bump the DDL epoch")
	}
	starRes, err = db.Exec("SELECT * FROM t WHERE id = 1")
	if err != nil || len(starRes.Columns) != 4 {
		t.Fatalf("star select after ALTER: cols=%v err=%v", starRes.Columns, err)
	}
	res, err = db.Exec("SELECT note FROM t WHERE id = 1")
	if err != nil || res.FirstValue().AsText() != "x" {
		t.Fatalf("new-column select: %v %v", res, err)
	}

	// DROP TABLE + re-create with a different shape: the cached plans of
	// both the select and the insert must recompile against the new
	// schema, not resurrect the dropped table's state.
	mustExec(t, db, "DROP TABLE t")
	if _, err := db.Exec(sel, Int(1)); err == nil {
		t.Fatal("select on dropped table succeeded")
	}
	mustExec(t, db, "CREATE TABLE t (val INTEGER, id INTEGER)") // swapped ordinals
	mustExec(t, db, "INSERT INTO t (id, val) VALUES (7, 700)")
	res, err = db.Exec(sel, Int(7))
	if err != nil || res.FirstValue().AsInt() != 700 {
		t.Fatalf("select after re-create: %v %v (stale ordinals?)", res, err)
	}
}

// TestCachedExecRaceWithDDL runs cached reads and writes concurrently
// with DDL churn; under -race this guards the plan-cache swap and the
// epoch protocol.
func TestCachedExecRaceWithDDL(t *testing.T) {
	db := Open()
	mustExec(t, db, "CREATE TABLE r (id INTEGER, grp INTEGER)")
	mustExec(t, db, "INSERT INTO r (id, grp) VALUES (1, 1), (2, 2), (3, 1)")

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := db.Exec("SELECT id FROM r WHERE grp = ?", Int(int64(g%2+1))); err != nil {
					t.Errorf("cached select: %v", err)
					return
				}
				if _, err := db.Exec("UPDATE r SET grp = grp WHERE id = ?", Int(int64(i%3+1))); err != nil {
					t.Errorf("cached update: %v", err)
					return
				}
			}
		}(g)
	}
	for i := 0; i < 25; i++ {
		mustExec(t, db, fmt.Sprintf("CREATE INDEX IF NOT EXISTS idx_r_grp%d ON r (grp)", i%2))
		mustExec(t, db, fmt.Sprintf("ALTER TABLE r ADD COLUMN extra%d INTEGER", i))
	}
	close(stop)
	wg.Wait()
}
