package ttdb

import (
	"fmt"
	"sync"
	"testing"

	"warp/internal/sqldb"
	"warp/internal/vclock"
)

// TestPartitionSetOverlapsEdgeCases pins the overlap semantics the
// scheduler's frontier and the partition lock manager both build on:
// empty sets, the whole-table wildcard, and adjacent (distinct) keys of
// one column.
func TestPartitionSetOverlapsEdgeCases(t *testing.T) {
	key := func(tab, col, k string) Partition { return Partition{Table: tab, Column: col, Key: k} }

	empty := NewPartitionSet()
	other := NewPartitionSet()
	other.Add(key("t", "user", "a"))
	if empty.Overlaps(other) || other.Overlaps(empty) {
		t.Fatal("empty set must overlap nothing")
	}
	if empty.Overlaps(empty) {
		t.Fatal("empty vs empty must not overlap")
	}
	if empty.Overlaps(nil) {
		t.Fatal("nil set must not overlap")
	}
	if empty.OverlapsAny([]Partition{WholeTable("t")}) {
		t.Fatal("empty set must not overlap a whole-table probe")
	}

	// The whole-table wildcard overlaps every partition of its table, in
	// both directions, and nothing of other tables.
	whole := NewPartitionSet()
	whole.Add(WholeTable("t"))
	keyed := NewPartitionSet()
	keyed.Add(key("t", "user", "a"))
	if !whole.Overlaps(keyed) || !keyed.Overlaps(whole) {
		t.Fatal("whole-table must overlap a keyed partition of its table")
	}
	if !whole.Overlaps(whole) {
		t.Fatal("whole-table must overlap itself")
	}
	otherTable := NewPartitionSet()
	otherTable.Add(key("u", "user", "a"))
	if whole.Overlaps(otherTable) {
		t.Fatal("whole-table must not overlap another table")
	}
	if !whole.OverlapsAny([]Partition{key("t", "user", "z")}) {
		t.Fatal("OverlapsAny must see the whole-table entry")
	}
	if !keyed.OverlapsAny([]Partition{WholeTable("t")}) {
		t.Fatal("a whole-table probe must hit keyed entries")
	}

	// Adjacent (distinct) keys of one column never overlap; identical
	// keys do; different columns only meet through the wildcard.
	a := NewPartitionSet()
	a.Add(key("t", "user", "a"))
	b := NewPartitionSet()
	b.Add(key("t", "user", "b"))
	if a.Overlaps(b) {
		t.Fatal("adjacent keys must not overlap")
	}
	b.Add(key("t", "user", "a"))
	if !a.Overlaps(b) {
		t.Fatal("identical keys must overlap")
	}
	cols := NewPartitionSet()
	cols.Add(key("t", "group", "a"))
	if a.Overlaps(cols) {
		t.Fatal("different partition columns must not overlap directly")
	}

	// Slice/Len bookkeeping across mixed entries.
	mixed := NewPartitionSet()
	mixed.Add(WholeTable("t"))
	mixed.Add(key("t", "user", "a"))
	mixed.Add(key("t", "user", "a")) // duplicate
	if mixed.Len() != 2 {
		t.Fatalf("Len = %d, want 2", mixed.Len())
	}
	if got := len(mixed.Slice()); got != 2 {
		t.Fatalf("Slice len = %d, want 2", got)
	}
}

// TestConcurrentSameTableRepair is the -race stress of the partition
// lock manager: many goroutines re-execute writes and roll back rows of
// *one* table concurrently, each within its own partition, alongside
// normal-execution reads. The final state must equal what the same
// operations produce serially.
func TestConcurrentSameTableRepair(t *testing.T) {
	const owners = 16
	db := Open(&vclock.Clock{})
	if err := db.Annotate("notes", TableSpec{RowIDColumn: "id", PartitionColumns: []string{"owner"}}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := db.Exec("CREATE TABLE notes (id INTEGER PRIMARY KEY, owner TEXT, body TEXT)"); err != nil {
		t.Fatal(err)
	}

	insertRecs := make([]*Record, owners)
	updateRecs := make([]*Record, owners)
	var attackTime [owners]int64
	for o := 0; o < owners; o++ {
		owner := fmt.Sprintf("u%d", o)
		_, rec, err := db.Exec("INSERT INTO notes (id, owner, body) VALUES (?, ?, ?)",
			sqldb.Int(int64(o+1)), sqldb.Text(owner), sqldb.Text("clean"))
		if err != nil {
			t.Fatal(err)
		}
		insertRecs[o] = rec
		attackTime[o] = db.Clock().Now() + 1
		_, rec, err = db.Exec("UPDATE notes SET body = ? WHERE owner = ?",
			sqldb.Text("ATTACKED"), sqldb.Text(owner))
		if err != nil {
			t.Fatal(err)
		}
		updateRecs[o] = rec
	}

	if _, err := db.BeginRepair(); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, owners*2)
	for o := 0; o < owners; o++ {
		o := o
		owner := fmt.Sprintf("u%d", o)
		wg.Add(1)
		go func() {
			defer wg.Done()
			if o%2 == 0 {
				// Two-phase re-execution of the recorded UPDATE with a
				// repaired body, at its original time.
				_, _, err := db.ReExec("UPDATE notes SET body = ? WHERE owner = ?",
					[]sqldb.Value{sqldb.Text("fixed-" + owner), sqldb.Text(owner)},
					updateRecs[o].Time, updateRecs[o])
				if err != nil {
					errs <- fmt.Errorf("reexec %s: %w", owner, err)
				}
				return
			}
			// Roll the owner's update back to before the attack: the
			// clean body is revived in the repair generation.
			if _, err := db.RollbackRows("notes", updateRecs[o].WriteRowIDs, attackTime[o]); err != nil {
				errs <- fmt.Errorf("rollback %s: %w", owner, err)
			}
		}()
		// Normal execution keeps reading the current generation during
		// repair.
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, _, err := db.Exec("SELECT body FROM notes WHERE owner = ?", sqldb.Text(owner))
			if err != nil {
				errs <- fmt.Errorf("read %s: %w", owner, err)
				return
			}
			if len(res.Rows) != 1 || res.Rows[0][0].AsText() != "ATTACKED" {
				errs <- fmt.Errorf("read %s during repair saw %v, want the current generation's ATTACKED row", owner, res.Rows)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if err := db.FinishRepair(); err != nil {
		t.Fatal(err)
	}

	res, _, err := db.Exec("SELECT owner, body FROM notes ORDER BY id")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != owners {
		t.Fatalf("rows = %d, want %d", len(res.Rows), owners)
	}
	for i, row := range res.Rows {
		owner, body := row[0].AsText(), row[1].AsText()
		want := "fixed-" + owner
		if i%2 == 1 {
			want = "clean"
		}
		if body != want {
			t.Fatalf("owner %s body = %q, want %q", owner, body, want)
		}
	}
	_ = insertRecs
}

// TestScopeEscalationFallsBackToTableLock: an operation whose statically
// derived partition scope turns out too narrow — here, a rollback of a
// row whose partition column was rewritten across partitions — must
// fall back to the table lock and still produce the right state.
func TestScopeEscalationFallsBackToTableLock(t *testing.T) {
	db := Open(&vclock.Clock{})
	if err := db.Annotate("notes", TableSpec{RowIDColumn: "id", PartitionColumns: []string{"owner"}}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := db.Exec("CREATE TABLE notes (id INTEGER PRIMARY KEY, owner TEXT, body TEXT)"); err != nil {
		t.Fatal(err)
	}
	_, ins, err := db.Exec("INSERT INTO notes (id, owner, body) VALUES (1, 'alice', 'v1')")
	if err != nil {
		t.Fatal(err)
	}
	mid := db.Clock().Now() + 1
	// Rewriting the partition column takes the whole-table scope and
	// leaves the row with versions in two partitions.
	if _, _, err := db.Exec("UPDATE notes SET owner = 'bob', body = 'v2' WHERE id = 1"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.BeginRepair(); err != nil {
		t.Fatal(err)
	}
	// The pre-scan sees both owners; even if a stale scope were derived,
	// the in-scope verification escalates. Either way the rollback must
	// revive the alice version in the repair generation.
	if _, err := db.RollbackRows("notes", ins.WriteRowIDs, mid); err != nil {
		t.Fatal(err)
	}
	if err := db.FinishRepair(); err != nil {
		t.Fatal(err)
	}
	res, _, err := db.Exec("SELECT owner, body FROM notes")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].AsText() != "alice" || res.Rows[0][1].AsText() != "v1" {
		t.Fatalf("rolled-back row = %v, want [alice v1]", res.Rows)
	}
}
