package store

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
	"warp/internal/store/storefs"
)

func testOpts() Options {
	return Options{SyncEveryAppend: true, GroupWindow: time.Millisecond}
}

func mustOpen(t *testing.T, dir string, opts Options) (*Store, *Recovery) {
	t.Helper()
	s, rec, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return s, rec
}

// checkpointOne writes a one-section checkpoint, the smallest full cut.
func checkpointOne(t *testing.T, s *Store, name, payload string) {
	t.Helper()
	err := s.WriteCheckpoint(func(cw *CheckpointWriter) error {
		cw.Section(name).String(payload)
		return nil
	})
	if err != nil {
		t.Fatalf("WriteCheckpoint: %v", err)
	}
}

func TestCodecRoundtrip(t *testing.T) {
	enc := NewEncoder()
	enc.Int(-42)
	enc.Int(1 << 50)
	enc.Uvarint(0)
	enc.Uvarint(1234567890123)
	enc.String("hello")
	enc.String("")
	enc.Bool(true)
	enc.Bool(false)
	enc.Byte(0xfe)

	dec := NewDecoder(enc.Bytes())
	if v := dec.Int(); v != -42 {
		t.Fatalf("Int = %d", v)
	}
	if v := dec.Int(); v != 1<<50 {
		t.Fatalf("Int = %d", v)
	}
	if v := dec.Uvarint(); v != 0 {
		t.Fatalf("Uvarint = %d", v)
	}
	if v := dec.Uvarint(); v != 1234567890123 {
		t.Fatalf("Uvarint = %d", v)
	}
	if v := dec.String(); v != "hello" {
		t.Fatalf("String = %q", v)
	}
	if v := dec.String(); v != "" {
		t.Fatalf("String = %q", v)
	}
	if !dec.Bool() || dec.Bool() {
		t.Fatal("Bool mismatch")
	}
	if v := dec.Byte(); v != 0xfe {
		t.Fatalf("Byte = %x", v)
	}
	if err := dec.Err(); err != nil {
		t.Fatalf("Err = %v", err)
	}
	if dec.Remaining() != 0 {
		t.Fatalf("Remaining = %d", dec.Remaining())
	}
	// Reading past the end is a sticky error, not a panic.
	dec.Int()
	if dec.Err() == nil {
		t.Fatal("want error after reading past end")
	}
}

func TestStreamEncoderSpills(t *testing.T) {
	var chunks [][]byte
	enc := newStreamEncoder(16, func(b []byte) error {
		chunks = append(chunks, append([]byte{}, b...))
		return nil
	})
	for i := 0; i < 100; i++ {
		enc.Int(int64(i * 7919))
		enc.String("some payload data")
	}
	enc.flush()
	if err := enc.spillErr(); err != nil {
		t.Fatal(err)
	}
	if len(chunks) < 10 {
		t.Fatalf("expected many spilled chunks, got %d", len(chunks))
	}
	// Reassembled, the stream must decode exactly.
	var all []byte
	for _, c := range chunks {
		all = append(all, c...)
	}
	dec := NewDecoder(all)
	for i := 0; i < 100; i++ {
		if v := dec.Int(); v != int64(i*7919) {
			t.Fatalf("Int %d = %d", i, v)
		}
		if v := dec.String(); v != "some payload data" {
			t.Fatalf("String %d = %q", i, v)
		}
	}
	if err := dec.Err(); err != nil {
		t.Fatal(err)
	}
}

func TestWALRoundtrip(t *testing.T) {
	dir := t.TempDir()
	s, rec := mustOpen(t, dir, testOpts())
	if rec.Manifest || len(rec.Records) != 0 {
		t.Fatalf("fresh dir recovered %+v", rec)
	}
	var want []Record
	for i := 0; i < 100; i++ {
		r := Record{Type: byte(i%7 + 1), Payload: []byte(fmt.Sprintf("record-%d", i))}
		want = append(want, r)
		if err := s.Append(r.Type, r.Payload); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	s2, rec2 := mustOpen(t, dir, testOpts())
	defer s2.Close()
	if rec2.TailCorrupt {
		t.Fatal("clean close reported corrupt tail")
	}
	assertRecords(t, rec2.Records, want, false)
}

func assertRecords(t *testing.T, got, want []Record, prefixOK bool) {
	t.Helper()
	if prefixOK {
		if len(got) > len(want) {
			t.Fatalf("recovered %d records, more than the %d written", len(got), len(want))
		}
	} else if len(got) != len(want) {
		t.Fatalf("recovered %d records, want %d", len(got), len(want))
	}
	for i, r := range got {
		if r.Type != want[i].Type || !bytes.Equal(r.Payload, want[i].Payload) {
			t.Fatalf("record %d: got type=%d payload=%q, want type=%d payload=%q",
				i, r.Type, r.Payload, want[i].Type, want[i].Payload)
		}
	}
}

func TestCheckpointAndTail(t *testing.T) {
	dir := t.TempDir()
	s, _ := mustOpen(t, dir, testOpts())
	for i := 0; i < 10; i++ {
		if err := s.Append(1, []byte(fmt.Sprintf("pre-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	checkpointOne(t, s, "state", "snapshot-state")
	var tail []Record
	for i := 0; i < 5; i++ {
		r := Record{Type: 2, Payload: []byte(fmt.Sprintf("post-%d", i))}
		tail = append(tail, r)
		if err := s.Append(r.Type, r.Payload); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, rec := mustOpen(t, dir, testOpts())
	defer s2.Close()
	if !rec.Manifest {
		t.Fatal("no checkpoint recovered")
	}
	dec, err := rec.ReadSection("state")
	if err != nil {
		t.Fatal(err)
	}
	if v := dec.String(); v != "snapshot-state" {
		t.Fatalf("section payload = %q", v)
	}
	assertRecords(t, rec.Records, tail, false)

	// The pre-checkpoint segment was pruned.
	entries, _ := os.ReadDir(dir)
	for _, e := range entries {
		var seq int64
		var id int
		if parseSegName(e.Name(), &id, &seq) {
			data, _ := os.ReadFile(filepath.Join(dir, e.Name()))
			if bytes.Contains(data, []byte("pre-0")) {
				t.Fatalf("pre-checkpoint records survive in %s", e.Name())
			}
		}
	}
}

func TestSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	opts := testOpts()
	opts.SegmentBytes = 256 // force many segments
	s, _ := mustOpen(t, dir, opts)
	var want []Record
	for i := 0; i < 50; i++ {
		r := Record{Type: 1, Payload: []byte(fmt.Sprintf("rotated-record-%03d", i))}
		want = append(want, r)
		if err := s.Append(r.Type, r.Payload); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	segs := 0
	entries, _ := os.ReadDir(dir)
	for _, e := range entries {
		var seq int64
		var id int
		if parseSegName(e.Name(), &id, &seq) {
			segs++
		}
	}
	if segs < 3 {
		t.Fatalf("expected multiple segments, got %d", segs)
	}
	s2, rec := mustOpen(t, dir, opts)
	defer s2.Close()
	assertRecords(t, rec.Records, want, false)
}

func TestGroupCommitConcurrentAppends(t *testing.T) {
	dir := t.TempDir()
	s, _ := mustOpen(t, dir, testOpts())
	const writers, per = 8, 50
	var wg sync.WaitGroup
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if err := s.Append(1, []byte(fmt.Sprintf("w%d-%d", g, i))); err != nil {
					t.Errorf("Append: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, rec := mustOpen(t, dir, testOpts())
	defer s2.Close()
	if len(rec.Records) != writers*per {
		t.Fatalf("recovered %d records, want %d", len(rec.Records), writers*per)
	}
	// Per-writer order must be preserved, and the merged stream must be
	// in strictly increasing LSN order.
	next := make(map[int]int)
	prevLSN := int64(0)
	for _, r := range rec.Records {
		if r.LSN <= prevLSN {
			t.Fatalf("record LSN %d not increasing after %d", r.LSN, prevLSN)
		}
		prevLSN = r.LSN
		var g, i int
		if _, err := fmt.Sscanf(string(r.Payload), "w%d-%d", &g, &i); err != nil {
			t.Fatalf("bad payload %q", r.Payload)
		}
		if i != next[g] {
			t.Fatalf("writer %d: record %d out of order (want %d)", g, i, next[g])
		}
		next[g]++
	}
}

func TestCrashDropsOnlyUnsyncedTail(t *testing.T) {
	dir := t.TempDir()
	opts := Options{GroupWindow: time.Hour} // no background sync interferes
	s, _ := mustOpen(t, dir, opts)
	for i := 0; i < 10; i++ {
		if err := s.Append(1, []byte(fmt.Sprintf("synced-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := s.Append(1, []byte(fmt.Sprintf("buffered-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	s.Crash()
	if err := s.Append(1, []byte("after-crash")); err != ErrCrashed {
		t.Fatalf("Append after crash: %v", err)
	}

	s2, rec := mustOpen(t, dir, opts)
	defer s2.Close()
	if len(rec.Records) < 10 {
		t.Fatalf("lost synced records: recovered %d", len(rec.Records))
	}
	for i := 0; i < 10; i++ {
		if string(rec.Records[i].Payload) != fmt.Sprintf("synced-%d", i) {
			t.Fatalf("record %d = %q", i, rec.Records[i].Payload)
		}
	}
	for _, r := range rec.Records {
		if string(r.Payload) == "after-crash" {
			t.Fatal("post-crash append became durable")
		}
	}
}

// TestCorruptionProperty is the WAL fuzz/property test of the recovery
// contract: for a WAL mutated by truncation or a random bit flip at an
// arbitrary offset, recovery either yields a byte-exact prefix of the
// original record stream or fails loudly — never a record that was not
// written.
func TestCorruptionProperty(t *testing.T) {
	base := t.TempDir()
	orig := filepath.Join(base, "orig")
	s, _ := mustOpen(t, orig, testOpts())
	rng := rand.New(rand.NewSource(7))
	var want []Record
	for i := 0; i < 60; i++ {
		payload := make([]byte, rng.Intn(200)+1)
		rng.Read(payload)
		r := Record{Type: byte(rng.Intn(8) + 1), Payload: payload}
		want = append(want, r)
		if err := s.Append(r.Type, r.Payload); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	walFile := ""
	entries, _ := os.ReadDir(orig)
	for _, e := range entries {
		var seq int64
		var id int
		if parseSegName(e.Name(), &id, &seq) {
			info, _ := e.Info()
			if info.Size() > 0 {
				walFile = e.Name()
			}
		}
	}
	if walFile == "" {
		t.Fatal("no WAL segment written")
	}

	for trial := 0; trial < 200; trial++ {
		dir := filepath.Join(base, fmt.Sprintf("trial-%d", trial))
		copyDir(t, orig, dir)
		path := filepath.Join(dir, walFile)
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		bitFlip := trial%2 == 1
		if bitFlip {
			i := rng.Intn(len(data))
			data[i] ^= 1 << rng.Intn(8)
		} else {
			data = data[:rng.Intn(len(data))] // truncate
		}
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}

		s2, rec, err := Open(dir, testOpts())
		if err != nil {
			continue // refusing to load is an allowed outcome
		}
		assertRecords(t, rec.Records, want, true)
		// A bit flip always damages exactly one frame, so it must be
		// detected: checksum-reported corruption, never silence. A
		// truncation at an exact frame boundary is indistinguishable
		// from a shorter clean log and may legitimately pass unflagged —
		// the recovered state is still a consistent prefix.
		if bitFlip && !rec.TailCorrupt {
			t.Fatalf("trial %d: bit flip not reported (recovered %d/%d records)",
				trial, len(rec.Records), len(want))
		}
		s2.Close()
	}
}

// TestTornTailNeutralized: a torn tail must not poison the chain. After
// recovering past a torn last segment, records fsynced by the new
// instance must survive a second recovery — the torn segment is
// truncated to its valid prefix so later segments stay reachable.
func TestTornTailNeutralized(t *testing.T) {
	dir := t.TempDir()
	opts := testOpts()
	s, _ := mustOpen(t, dir, opts)
	for i := 0; i < 5; i++ {
		if err := s.Append(1, []byte(fmt.Sprintf("old-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Tear the tail mid-frame.
	path := segName(dir, 0, 1)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-3], 0o644); err != nil {
		t.Fatal(err)
	}

	s2, rec := mustOpen(t, dir, opts)
	if !rec.TailCorrupt || len(rec.Records) != 4 {
		t.Fatalf("first recovery: corrupt=%v records=%d, want prefix of 4", rec.TailCorrupt, len(rec.Records))
	}
	if err := s2.Append(1, []byte("post-recovery")); err != nil {
		t.Fatal(err)
	}
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}

	s3, rec3 := mustOpen(t, dir, opts)
	defer s3.Close()
	if rec3.TailCorrupt {
		t.Fatal("second recovery still reports the neutralized torn tail")
	}
	got := make([]string, 0, len(rec3.Records))
	for _, r := range rec3.Records {
		got = append(got, string(r.Payload))
	}
	want := []string{"old-0", "old-1", "old-2", "old-3", "post-recovery"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("second recovery lost acknowledged records: %v, want %v", got, want)
	}
}

// TestSnapshotCorruption: a corrupt checkpoint must never load. With no
// older checkpoint Open fails; records appended after the corrupt
// checkpoint must not replay over an older base.
func TestSnapshotCorruption(t *testing.T) {
	dir := t.TempDir()
	s, _ := mustOpen(t, dir, testOpts())
	if err := s.Append(1, []byte("pre")); err != nil {
		t.Fatal(err)
	}
	checkpointOne(t, s, "state", "state-payload")
	if err := s.Append(1, []byte("post")); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Flip a byte inside the checkpoint file's payload.
	entries, _ := os.ReadDir(dir)
	for _, e := range entries {
		var seq int64
		if parseSeqName(e.Name(), "ckpt-", ".sec", &seq) {
			path := filepath.Join(dir, e.Name())
			data, _ := os.ReadFile(path)
			data[len(data)-1] ^= 0xff
			if err := os.WriteFile(path, data, 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}
	if _, _, err := Open(dir, testOpts()); err == nil {
		t.Fatal("Open loaded a corrupt checkpoint")
	}
}

// TestLegacyLayoutRefused: a data directory from the pre-sharding
// format must refuse to open rather than silently start empty.
func TestLegacyLayoutRefused(t *testing.T) {
	for _, name := range []string{"wal-00000001.log", "snap-00000001.snap"} {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, name), []byte("legacy"), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, _, err := Open(dir, testOpts()); err == nil {
			t.Fatalf("Open ignored legacy file %s and started empty", name)
		}
	}
}

// TestWALBytesTrackedWithSignalDisabled: SnapshotBytes < 0 disables the
// NeedSnapshot signal, not the byte accounting.
func TestWALBytesTrackedWithSignalDisabled(t *testing.T) {
	opts := testOpts()
	opts.SnapshotBytes = -1
	s, _ := mustOpen(t, t.TempDir(), opts)
	defer s.Close()
	if err := s.Append(1, []byte("counted")); err != nil {
		t.Fatal(err)
	}
	if got := s.WALBytesSinceSnapshot(); got == 0 {
		t.Fatal("WALBytesSinceSnapshot stuck at 0 with the snapshot signal disabled")
	}
}

func copyDir(t *testing.T, src, dst string) {
	t.Helper()
	if err := os.MkdirAll(dst, 0o755); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// FuzzWALSegment feeds arbitrary bytes through the segment reader: it
// must never panic and never hand back a frame whose checksum does not
// match.
func FuzzWALSegment(f *testing.F) {
	enc := NewEncoder()
	enc.String("seed")
	valid := func(records ...[]byte) []byte {
		var buf bytes.Buffer
		for _, r := range records {
			dir := f.TempDir()
			path := filepath.Join(dir, "seg")
			w, err := openSegment(storefs.OS, path, retryPolicy{attempts: 1, backoff: time.Millisecond})
			if err != nil {
				f.Fatal(err)
			}
			if err := w.append(r); err != nil {
				f.Fatal(err)
			}
			if err := w.close(); err != nil {
				f.Fatal(err)
			}
			data, _ := os.ReadFile(path)
			buf.Write(data)
		}
		return buf.Bytes()
	}
	f.Add(valid([]byte{1, 2, 3}, []byte("hello")))
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		path := filepath.Join(dir, "seg")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Skip()
		}
		_, _, _ = readSegment(storefs.OS, path, func(payload []byte) error {
			if len(payload) < 1 {
				t.Fatal("reader surfaced an empty frame")
			}
			return nil
		})
	})
}
