package sqldb

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

// TestPropertyPrintParseFixedPoint: printing any parsed statement and
// re-parsing it yields the same printed form.
func TestPropertyPrintParseFixedPoint(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	f := func() bool {
		src := randomSelect(rng)
		stmt, err := Parse(src)
		if err != nil {
			t.Fatalf("generated statement does not parse: %q: %v", src, err)
		}
		printed := stmt.String()
		stmt2, err := Parse(printed)
		if err != nil {
			t.Errorf("printed form does not re-parse: %q: %v", printed, err)
			return false
		}
		return stmt2.String() == printed
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// randomSelect generates a random but valid SELECT statement.
func randomSelect(rng *rand.Rand) string {
	cols := []string{"a", "b", "c"}
	col := func() string { return cols[rng.Intn(len(cols))] }
	var where string
	switch rng.Intn(5) {
	case 0:
		where = fmt.Sprintf(" WHERE %s = %d", col(), rng.Intn(10))
	case 1:
		where = fmt.Sprintf(" WHERE %s = %d AND %s != %d", col(), rng.Intn(10), col(), rng.Intn(10))
	case 2:
		where = fmt.Sprintf(" WHERE %s IN (%d, %d)", col(), rng.Intn(10), rng.Intn(10))
	case 3:
		where = fmt.Sprintf(" WHERE %s LIKE '%%x%%' OR %s IS NULL", col(), col())
	}
	var order string
	if rng.Intn(2) == 0 {
		order = " ORDER BY " + col()
		if rng.Intn(2) == 0 {
			order += " DESC"
		}
	}
	var limit string
	if rng.Intn(3) == 0 {
		limit = fmt.Sprintf(" LIMIT %d", rng.Intn(5))
	}
	return fmt.Sprintf("SELECT %s, %s FROM t%s%s%s", col(), col(), where, order, limit)
}

// TestPropertyWriteSetMatchesSelect: the rows UPDATE/DELETE touch are
// exactly the rows a SELECT with the same WHERE clause returns. This is the
// invariant WARP's two-phase re-execution (§4.2) relies on.
func TestPropertyWriteSetMatchesSelect(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 100; iter++ {
		db := Open()
		if _, err := db.Exec("CREATE TABLE t (id INTEGER PRIMARY KEY, grp INTEGER, val INTEGER)"); err != nil {
			t.Fatal(err)
		}
		n := 1 + rng.Intn(30)
		for i := 0; i < n; i++ {
			if _, err := db.Exec("INSERT INTO t (id, grp, val) VALUES (?, ?, ?)",
				Int(int64(i)), Int(int64(rng.Intn(4))), Int(int64(rng.Intn(100)))); err != nil {
				t.Fatal(err)
			}
		}
		grp := rng.Intn(5)
		where := fmt.Sprintf("grp = %d", grp)

		sel, err := db.Exec("SELECT id FROM t WHERE " + where + " ORDER BY id")
		if err != nil {
			t.Fatal(err)
		}
		upd, err := db.Exec("UPDATE t SET val = val + 1 WHERE " + where + " RETURNING id")
		if err != nil {
			t.Fatal(err)
		}
		if upd.Affected != sel.NumRows() {
			t.Fatalf("update affected %d, select matched %d", upd.Affected, sel.NumRows())
		}
		selIDs := map[int64]bool{}
		for _, r := range sel.Rows {
			selIDs[r[0].AsInt()] = true
		}
		for _, r := range upd.Rows {
			if !selIDs[r[0].AsInt()] {
				t.Fatalf("update touched id %d not in select set", r[0].AsInt())
			}
		}
		del, err := db.Exec("DELETE FROM t WHERE " + where + " RETURNING id")
		if err != nil {
			t.Fatal(err)
		}
		if del.Affected != sel.NumRows() {
			t.Fatalf("delete affected %d, select matched %d", del.Affected, sel.NumRows())
		}
	}
}

// TestPropertyIndexTransparency: adding an index never changes the result
// of any query, across a random workload of inserts, updates, and deletes.
func TestPropertyIndexTransparency(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for iter := 0; iter < 50; iter++ {
		plain := Open()
		indexed := Open()
		for _, db := range []*DB{plain, indexed} {
			if _, err := db.Exec("CREATE TABLE t (id INTEGER PRIMARY KEY, k TEXT, v INTEGER)"); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := indexed.Exec("CREATE INDEX idx_k ON t (k)"); err != nil {
			t.Fatal(err)
		}
		nextID := int64(0)
		keys := []string{"x", "y", "z"}
		for step := 0; step < 60; step++ {
			var stmt string
			var params []Value
			switch rng.Intn(4) {
			case 0, 1:
				stmt = "INSERT INTO t (id, k, v) VALUES (?, ?, ?)"
				params = []Value{Int(nextID), Text(keys[rng.Intn(3)]), Int(int64(rng.Intn(50)))}
				nextID++
			case 2:
				stmt = "UPDATE t SET v = v + 1 WHERE k = ?"
				params = []Value{Text(keys[rng.Intn(3)])}
			case 3:
				stmt = "DELETE FROM t WHERE k = ? AND v % 7 = 0"
				params = []Value{Text(keys[rng.Intn(3)])}
			}
			r1, err1 := plain.Exec(stmt, params...)
			r2, err2 := indexed.Exec(stmt, params...)
			if (err1 == nil) != (err2 == nil) {
				t.Fatalf("divergent errors: %v vs %v", err1, err2)
			}
			if err1 == nil && r1.Affected != r2.Affected {
				t.Fatalf("divergent affected: %d vs %d on %s", r1.Affected, r2.Affected, stmt)
			}
			q := "SELECT id, k, v FROM t WHERE k = ? ORDER BY id"
			k := Text(keys[rng.Intn(3)])
			s1, err := plain.Exec(q, k)
			if err != nil {
				t.Fatal(err)
			}
			s2, err := indexed.Exec(q, k)
			if err != nil {
				t.Fatal(err)
			}
			if s1.Fingerprint() != s2.Fingerprint() {
				t.Fatalf("index changed query result at step %d", step)
			}
		}
	}
}

// TestPropertyLikeMatchesReference compares the LIKE matcher against a
// slow reference implementation on random inputs.
func TestPropertyLikeMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	alphabet := "ab%_"
	randStr := func(n int) string {
		b := make([]byte, rng.Intn(n))
		for i := range b {
			b[i] = alphabet[rng.Intn(len(alphabet))]
		}
		return string(b)
	}
	var ref func(p, s string) bool
	ref = func(p, s string) bool {
		if p == "" {
			return s == ""
		}
		switch p[0] {
		case '%':
			for i := 0; i <= len(s); i++ {
				if ref(p[1:], s[i:]) {
					return true
				}
			}
			return false
		case '_':
			return s != "" && ref(p[1:], s[1:])
		default:
			return s != "" && s[0] == p[0] && ref(p[1:], s[1:])
		}
	}
	for i := 0; i < 2000; i++ {
		p := randStr(8)
		s := randStr(8)
		// The subject string should not contain wildcards for the reference
		// comparison to be meaningful; strip them.
		if got, want := likeMatch(p, s), ref(p, s); got != want {
			t.Fatalf("likeMatch(%q, %q) = %v, reference = %v", p, s, got, want)
		}
	}
}

// TestPropertyValueCompareTotalOrder: comparison over non-NULL values of
// the same kind is a total order (antisymmetric, transitive on a sample).
func TestPropertyValueCompareTotalOrder(t *testing.T) {
	vals := []Value{Int(-5), Int(0), Int(3), Text(""), Text("a"), Text("b"), Bool(false), Bool(true)}
	for _, a := range vals {
		for _, b := range vals {
			ca, okA := compareValues(a, b)
			cb, okB := compareValues(b, a)
			if okA != okB {
				t.Fatalf("asymmetric definedness: %v vs %v", a, b)
			}
			if okA && ca != -cb {
				t.Fatalf("not antisymmetric: cmp(%v,%v)=%d cmp(%v,%v)=%d", a, b, ca, b, a, cb)
			}
			if okA && ca == 0 && !a.Equal(b) {
				t.Fatalf("cmp=0 but not Equal: %v %v", a, b)
			}
		}
	}
	// Transitivity holds within coherent comparison classes: values of the
	// same kind, and int/bool mixes (cross-kind text coercion is best
	// effort, as in most embedded engines).
	numeric := func(v Value) bool { return v.Kind == KindInt || v.Kind == KindBool }
	sameClass := func(a, b Value) bool {
		return a.Kind == b.Kind || (numeric(a) && numeric(b))
	}
	for _, a := range vals {
		for _, b := range vals {
			for _, c := range vals {
				if !sameClass(a, b) || !sameClass(b, c) || !sameClass(a, c) {
					continue
				}
				ab, ok1 := compareValues(a, b)
				bc, ok2 := compareValues(b, c)
				ac, ok3 := compareValues(a, c)
				if ok1 && ok2 && ok3 && ab <= 0 && bc <= 0 && ac > 0 {
					t.Fatalf("not transitive: %v <= %v <= %v but cmp(%v, %v) > 0", a, b, c, a, c)
				}
			}
		}
	}
}
