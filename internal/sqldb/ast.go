package sqldb

import (
	"fmt"
	"strings"
)

// Statement is a parsed SQL statement. The concrete types are CreateTable,
// CreateIndex, AlterTableAdd, Insert, Select, Update, Delete, and DropTable.
//
// Statements are plain data: the time-travel layer (internal/ttdb) rewrites
// them before execution. Use Clone before mutating a shared statement.
type Statement interface {
	// String renders the statement back to SQL text.
	String() string
	// Clone returns a deep copy of the statement.
	Clone() Statement
	stmt()
}

// Expr is a SQL expression appearing in WHERE clauses, SET lists, select
// lists, and VALUES lists.
type Expr interface {
	// String renders the expression back to SQL text.
	String() string
	// CloneExpr returns a deep copy of the expression.
	CloneExpr() Expr
	expr()
}

// ColumnDef describes one column in a CREATE TABLE or ALTER TABLE statement.
type ColumnDef struct {
	Name    string
	Type    Kind // KindInt, KindText or KindBool
	NotNull bool
	Default *Literal // nil when no default; NULL default otherwise
}

// String renders the column definition.
func (c ColumnDef) String() string {
	var b strings.Builder
	b.WriteString(c.Name)
	b.WriteString(" ")
	b.WriteString(c.Type.String())
	if c.NotNull {
		b.WriteString(" NOT NULL")
	}
	if c.Default != nil {
		b.WriteString(" DEFAULT ")
		b.WriteString(c.Default.String())
	}
	return b.String()
}

// UniqueConstraint is a PRIMARY KEY or UNIQUE constraint over one or more
// columns. The time-travel layer extends these with version columns so that
// multiple versions of a row can coexist (paper §6).
type UniqueConstraint struct {
	Name    string // optional constraint name
	Columns []string
	Primary bool // true for PRIMARY KEY
}

// String renders the constraint.
func (u UniqueConstraint) String() string {
	kw := "UNIQUE"
	if u.Primary {
		kw = "PRIMARY KEY"
	}
	return fmt.Sprintf("%s (%s)", kw, strings.Join(u.Columns, ", "))
}

// CreateTable is a CREATE TABLE statement.
type CreateTable struct {
	Table       string
	IfNotExists bool
	Columns     []ColumnDef
	Uniques     []UniqueConstraint
}

func (*CreateTable) stmt() {}

// String renders the statement back to SQL.
func (s *CreateTable) String() string {
	var parts []string
	for _, c := range s.Columns {
		parts = append(parts, c.String())
	}
	for _, u := range s.Uniques {
		parts = append(parts, u.String())
	}
	ine := ""
	if s.IfNotExists {
		ine = "IF NOT EXISTS "
	}
	return fmt.Sprintf("CREATE TABLE %s%s (%s)", ine, s.Table, strings.Join(parts, ", "))
}

// Clone returns a deep copy.
func (s *CreateTable) Clone() Statement {
	c := *s
	c.Columns = make([]ColumnDef, len(s.Columns))
	for i, col := range s.Columns {
		c.Columns[i] = col
		if col.Default != nil {
			d := *col.Default
			c.Columns[i].Default = &d
		}
	}
	c.Uniques = make([]UniqueConstraint, len(s.Uniques))
	for i, u := range s.Uniques {
		c.Uniques[i] = u
		c.Uniques[i].Columns = append([]string(nil), u.Columns...)
	}
	return &c
}

// CreateIndex is a CREATE INDEX statement. Only single-column equality hash
// indexes are supported.
type CreateIndex struct {
	Name        string
	Table       string
	Column      string
	IfNotExists bool
}

func (*CreateIndex) stmt() {}

// String renders the statement back to SQL.
func (s *CreateIndex) String() string {
	ine := ""
	if s.IfNotExists {
		ine = "IF NOT EXISTS "
	}
	return fmt.Sprintf("CREATE INDEX %s%s ON %s (%s)", ine, s.Name, s.Table, s.Column)
}

// Clone returns a deep copy.
func (s *CreateIndex) Clone() Statement { c := *s; return &c }

// AlterTableAdd is an ALTER TABLE ... ADD COLUMN statement.
type AlterTableAdd struct {
	Table  string
	Column ColumnDef
}

func (*AlterTableAdd) stmt() {}

// String renders the statement back to SQL.
func (s *AlterTableAdd) String() string {
	return fmt.Sprintf("ALTER TABLE %s ADD COLUMN %s", s.Table, s.Column.String())
}

// Clone returns a deep copy.
func (s *AlterTableAdd) Clone() Statement {
	c := *s
	if s.Column.Default != nil {
		d := *s.Column.Default
		c.Column.Default = &d
	}
	return &c
}

// DropTable is a DROP TABLE statement.
type DropTable struct {
	Table    string
	IfExists bool
}

func (*DropTable) stmt() {}

// String renders the statement back to SQL.
func (s *DropTable) String() string {
	ie := ""
	if s.IfExists {
		ie = "IF EXISTS "
	}
	return "DROP TABLE " + ie + s.Table
}

// Clone returns a deep copy.
func (s *DropTable) Clone() Statement { c := *s; return &c }

// Insert is an INSERT statement.
type Insert struct {
	Table     string
	Columns   []string // empty means all table columns in order
	Rows      [][]Expr // one or more VALUES tuples
	Returning []string // optional RETURNING column list
}

func (*Insert) stmt() {}

// String renders the statement back to SQL.
func (s *Insert) String() string {
	var b strings.Builder
	b.WriteString("INSERT INTO ")
	b.WriteString(s.Table)
	if len(s.Columns) > 0 {
		b.WriteString(" (")
		b.WriteString(strings.Join(s.Columns, ", "))
		b.WriteString(")")
	}
	b.WriteString(" VALUES ")
	for i, row := range s.Rows {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString("(")
		for j, e := range row {
			if j > 0 {
				b.WriteString(", ")
			}
			b.WriteString(e.String())
		}
		b.WriteString(")")
	}
	if len(s.Returning) > 0 {
		b.WriteString(" RETURNING ")
		b.WriteString(strings.Join(s.Returning, ", "))
	}
	return b.String()
}

// Clone returns a deep copy.
func (s *Insert) Clone() Statement {
	c := *s
	c.Columns = append([]string(nil), s.Columns...)
	c.Returning = append([]string(nil), s.Returning...)
	c.Rows = make([][]Expr, len(s.Rows))
	for i, row := range s.Rows {
		c.Rows[i] = cloneExprs(row)
	}
	return &c
}

// SelectItem is one entry in a SELECT list: an expression with an optional
// alias. A bare `*` is represented by Star=true.
type SelectItem struct {
	Expr  Expr
	Alias string
	Star  bool
}

// String renders the item.
func (it SelectItem) String() string {
	if it.Star {
		return "*"
	}
	if it.Alias != "" {
		return it.Expr.String() + " AS " + it.Alias
	}
	return it.Expr.String()
}

// OrderBy is one ORDER BY term.
type OrderBy struct {
	Expr Expr
	Desc bool
}

// String renders the term.
func (o OrderBy) String() string {
	if o.Desc {
		return o.Expr.String() + " DESC"
	}
	return o.Expr.String()
}

// Select is a SELECT statement over a single table.
type Select struct {
	Items    []SelectItem
	Table    string // empty for table-less SELECT (e.g. SELECT 1)
	Where    Expr   // nil when absent
	OrderBy  []OrderBy
	Limit    Expr // nil when absent
	Offset   Expr // nil when absent
	Distinct bool
}

func (*Select) stmt() {}

// String renders the statement back to SQL.
func (s *Select) String() string {
	var b strings.Builder
	b.WriteString("SELECT ")
	if s.Distinct {
		b.WriteString("DISTINCT ")
	}
	for i, it := range s.Items {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(it.String())
	}
	if s.Table != "" {
		b.WriteString(" FROM ")
		b.WriteString(s.Table)
	}
	if s.Where != nil {
		b.WriteString(" WHERE ")
		b.WriteString(s.Where.String())
	}
	if len(s.OrderBy) > 0 {
		b.WriteString(" ORDER BY ")
		for i, o := range s.OrderBy {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(o.String())
		}
	}
	if s.Limit != nil {
		b.WriteString(" LIMIT ")
		b.WriteString(s.Limit.String())
	}
	if s.Offset != nil {
		b.WriteString(" OFFSET ")
		b.WriteString(s.Offset.String())
	}
	return b.String()
}

// Clone returns a deep copy.
func (s *Select) Clone() Statement {
	c := *s
	c.Items = make([]SelectItem, len(s.Items))
	for i, it := range s.Items {
		c.Items[i] = it
		if it.Expr != nil {
			c.Items[i].Expr = it.Expr.CloneExpr()
		}
	}
	if s.Where != nil {
		c.Where = s.Where.CloneExpr()
	}
	c.OrderBy = make([]OrderBy, len(s.OrderBy))
	for i, o := range s.OrderBy {
		c.OrderBy[i] = OrderBy{Expr: o.Expr.CloneExpr(), Desc: o.Desc}
	}
	if s.Limit != nil {
		c.Limit = s.Limit.CloneExpr()
	}
	if s.Offset != nil {
		c.Offset = s.Offset.CloneExpr()
	}
	return &c
}

// Assignment is one SET column = expr pair in an UPDATE.
type Assignment struct {
	Column string
	Expr   Expr
}

// String renders the assignment.
func (a Assignment) String() string { return a.Column + " = " + a.Expr.String() }

// Update is an UPDATE statement.
type Update struct {
	Table     string
	Set       []Assignment
	Where     Expr // nil when absent
	Returning []string
}

func (*Update) stmt() {}

// String renders the statement back to SQL.
func (s *Update) String() string {
	var b strings.Builder
	b.WriteString("UPDATE ")
	b.WriteString(s.Table)
	b.WriteString(" SET ")
	for i, a := range s.Set {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(a.String())
	}
	if s.Where != nil {
		b.WriteString(" WHERE ")
		b.WriteString(s.Where.String())
	}
	if len(s.Returning) > 0 {
		b.WriteString(" RETURNING ")
		b.WriteString(strings.Join(s.Returning, ", "))
	}
	return b.String()
}

// Clone returns a deep copy.
func (s *Update) Clone() Statement {
	c := *s
	c.Set = make([]Assignment, len(s.Set))
	for i, a := range s.Set {
		c.Set[i] = Assignment{Column: a.Column, Expr: a.Expr.CloneExpr()}
	}
	if s.Where != nil {
		c.Where = s.Where.CloneExpr()
	}
	c.Returning = append([]string(nil), s.Returning...)
	return &c
}

// Delete is a DELETE statement.
type Delete struct {
	Table     string
	Where     Expr // nil when absent
	Returning []string
}

func (*Delete) stmt() {}

// String renders the statement back to SQL.
func (s *Delete) String() string {
	var b strings.Builder
	b.WriteString("DELETE FROM ")
	b.WriteString(s.Table)
	if s.Where != nil {
		b.WriteString(" WHERE ")
		b.WriteString(s.Where.String())
	}
	if len(s.Returning) > 0 {
		b.WriteString(" RETURNING ")
		b.WriteString(strings.Join(s.Returning, ", "))
	}
	return b.String()
}

// Clone returns a deep copy.
func (s *Delete) Clone() Statement {
	c := *s
	if s.Where != nil {
		c.Where = s.Where.CloneExpr()
	}
	c.Returning = append([]string(nil), s.Returning...)
	return &c
}

//
// Expressions
//

// BinOp enumerates binary operators.
type BinOp uint8

// Binary operators, in increasing precedence groups.
const (
	OpOr BinOp = iota
	OpAnd
	OpEq
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	OpLike
	OpAdd
	OpSub
	OpConcat
	OpMul
	OpDiv
	OpMod
)

var binOpNames = map[BinOp]string{
	OpOr: "OR", OpAnd: "AND", OpEq: "=", OpNe: "!=", OpLt: "<", OpLe: "<=",
	OpGt: ">", OpGe: ">=", OpLike: "LIKE", OpAdd: "+", OpSub: "-",
	OpConcat: "||", OpMul: "*", OpDiv: "/", OpMod: "%",
}

// String returns the SQL spelling of the operator.
func (op BinOp) String() string { return binOpNames[op] }

// BinaryExpr applies a binary operator to two operands.
type BinaryExpr struct {
	Op          BinOp
	Left, Right Expr
}

func (*BinaryExpr) expr() {}

// String renders the expression with full parenthesization.
func (e *BinaryExpr) String() string {
	return "(" + e.Left.String() + " " + e.Op.String() + " " + e.Right.String() + ")"
}

// CloneExpr returns a deep copy.
func (e *BinaryExpr) CloneExpr() Expr {
	return &BinaryExpr{Op: e.Op, Left: e.Left.CloneExpr(), Right: e.Right.CloneExpr()}
}

// UnOp enumerates unary operators.
type UnOp uint8

// Unary operators.
const (
	OpNot UnOp = iota
	OpNeg
)

// UnaryExpr applies a unary operator to an operand.
type UnaryExpr struct {
	Op      UnOp
	Operand Expr
}

func (*UnaryExpr) expr() {}

// String renders the expression.
func (e *UnaryExpr) String() string {
	if e.Op == OpNot {
		return "(NOT " + e.Operand.String() + ")"
	}
	return "(-" + e.Operand.String() + ")"
}

// CloneExpr returns a deep copy.
func (e *UnaryExpr) CloneExpr() Expr {
	return &UnaryExpr{Op: e.Op, Operand: e.Operand.CloneExpr()}
}

// ColumnRef names a column of the queried table.
type ColumnRef struct {
	Name string
}

func (*ColumnRef) expr() {}

// String renders the reference.
func (e *ColumnRef) String() string { return e.Name }

// CloneExpr returns a copy.
func (e *ColumnRef) CloneExpr() Expr { c := *e; return &c }

// Literal is a constant value.
type Literal struct {
	Value Value
}

func (*Literal) expr() {}

// String renders the literal.
func (e *Literal) String() string { return e.Value.String() }

// CloneExpr returns a copy.
func (e *Literal) CloneExpr() Expr { c := *e; return &c }

// Lit returns a literal expression for v.
func Lit(v Value) *Literal { return &Literal{Value: v} }

// Param is a positional `?` parameter (0-based Index assigned by the
// parser, left to right).
type Param struct {
	Index int
}

func (*Param) expr() {}

// String renders the parameter placeholder.
func (e *Param) String() string { return "?" }

// CloneExpr returns a copy.
func (e *Param) CloneExpr() Expr { c := *e; return &c }

// InExpr is `expr [NOT] IN (e1, e2, ...)`.
type InExpr struct {
	Expr Expr
	List []Expr
	Not  bool
}

func (*InExpr) expr() {}

// String renders the expression.
func (e *InExpr) String() string {
	var b strings.Builder
	b.WriteString("(")
	b.WriteString(e.Expr.String())
	if e.Not {
		b.WriteString(" NOT")
	}
	b.WriteString(" IN (")
	for i, item := range e.List {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(item.String())
	}
	b.WriteString("))")
	return b.String()
}

// CloneExpr returns a deep copy.
func (e *InExpr) CloneExpr() Expr {
	return &InExpr{Expr: e.Expr.CloneExpr(), List: cloneExprs(e.List), Not: e.Not}
}

// IsNullExpr is `expr IS [NOT] NULL`.
type IsNullExpr struct {
	Expr Expr
	Not  bool
}

func (*IsNullExpr) expr() {}

// String renders the expression.
func (e *IsNullExpr) String() string {
	if e.Not {
		return "(" + e.Expr.String() + " IS NOT NULL)"
	}
	return "(" + e.Expr.String() + " IS NULL)"
}

// CloneExpr returns a deep copy.
func (e *IsNullExpr) CloneExpr() Expr {
	return &IsNullExpr{Expr: e.Expr.CloneExpr(), Not: e.Not}
}

// FuncCall is a function or aggregate call. Star is set for COUNT(*).
type FuncCall struct {
	Name string // upper-cased by the parser
	Args []Expr
	Star bool
}

func (*FuncCall) expr() {}

// String renders the call.
func (e *FuncCall) String() string {
	if e.Star {
		return e.Name + "(*)"
	}
	var args []string
	for _, a := range e.Args {
		args = append(args, a.String())
	}
	return e.Name + "(" + strings.Join(args, ", ") + ")"
}

// CloneExpr returns a deep copy.
func (e *FuncCall) CloneExpr() Expr {
	return &FuncCall{Name: e.Name, Args: cloneExprs(e.Args), Star: e.Star}
}

// IsAggregate reports whether the call is one of the supported aggregate
// functions (COUNT, SUM, MIN, MAX, AVG).
func (e *FuncCall) IsAggregate() bool {
	switch e.Name {
	case "COUNT", "SUM", "MIN", "MAX", "AVG":
		return true
	}
	return false
}

func cloneExprs(in []Expr) []Expr {
	if in == nil {
		return nil
	}
	out := make([]Expr, len(in))
	for i, e := range in {
		out[i] = e.CloneExpr()
	}
	return out
}

// Col returns a column reference expression.
func Col(name string) *ColumnRef { return &ColumnRef{Name: name} }

// Eq returns the expression `col = value` for literal v.
func Eq(col string, v Value) Expr {
	return &BinaryExpr{Op: OpEq, Left: Col(col), Right: Lit(v)}
}

// And conjoins expressions, dropping nils. It returns nil when all inputs
// are nil.
func And(exprs ...Expr) Expr {
	var out Expr
	for _, e := range exprs {
		if e == nil {
			continue
		}
		if out == nil {
			out = e
		} else {
			out = &BinaryExpr{Op: OpAnd, Left: out, Right: e}
		}
	}
	return out
}
