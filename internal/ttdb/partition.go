package ttdb

import (
	"sort"
	"strings"

	"warp/internal/sqldb"
)

// Partition names a slice of a table for dependency analysis (§4.1). A
// partition is identified by a partition column and the Key() of a value in
// that column. The zero Column denotes the whole table: the conservative
// fallback when WHERE-clause analysis cannot bound what a query touches.
type Partition struct {
	Table  string
	Column string // "" means the whole table
	Key    string // sqldb.Value.Key() of the partition value
}

// WholeTable returns the conservative whole-table partition.
func WholeTable(table string) Partition { return Partition{Table: table} }

// IsWholeTable reports whether p covers the entire table.
func (p Partition) IsWholeTable() bool { return p.Column == "" }

// String renders the partition for logs, debugging, and history-graph
// node names. ParsePartition is its inverse.
func (p Partition) String() string {
	if p.IsWholeTable() {
		return p.Table + "/*"
	}
	return p.Table + "/" + p.Column + "=" + p.Key
}

// ParsePartition parses the String form of a partition back into a
// Partition. Table and column names are SQL identifiers (no "/" or "="),
// so splitting at the first separator is unambiguous even when the key
// contains arbitrary user data. The repair scheduler uses this to turn the
// history graph's partition node names back into typed partitions without
// re-deriving them from query records.
func ParsePartition(s string) (Partition, bool) {
	i := strings.IndexByte(s, '/')
	if i <= 0 {
		return Partition{}, false
	}
	table, rest := s[:i], s[i+1:]
	if rest == "*" {
		return WholeTable(table), true
	}
	j := strings.IndexByte(rest, '=')
	if j <= 0 {
		return Partition{}, false
	}
	return Partition{Table: table, Column: rest[:j], Key: rest[j+1:]}, true
}

// Overlaps reports whether two partitions can contain a common row. A
// whole-table partition overlaps everything in its table. Partitions on
// different columns overlap conservatively only through the whole-table
// case: writes record the partition keys of every touched row in every
// partition column, so same-column comparison is sufficient (see the
// package analysis notes).
func (p Partition) Overlaps(q Partition) bool {
	if p.Table != q.Table {
		return false
	}
	if p.IsWholeTable() || q.IsWholeTable() {
		return true
	}
	return p.Column == q.Column && p.Key == q.Key
}

// PartitionSet is a set of partitions with overlap queries. The zero value
// is an empty set.
type PartitionSet struct {
	whole map[string]bool // tables fully covered
	keys  map[Partition]bool
}

// NewPartitionSet returns an empty set.
func NewPartitionSet() *PartitionSet {
	return &PartitionSet{whole: make(map[string]bool), keys: make(map[Partition]bool)}
}

// Add inserts p into the set.
func (s *PartitionSet) Add(p Partition) {
	if p.IsWholeTable() {
		s.whole[p.Table] = true
		return
	}
	s.keys[p] = true
}

// AddAll inserts every partition in ps.
func (s *PartitionSet) AddAll(ps []Partition) {
	for _, p := range ps {
		s.Add(p)
	}
}

// Len returns the number of distinct entries.
func (s *PartitionSet) Len() int { return len(s.whole) + len(s.keys) }

// OverlapsAny reports whether any partition in ps overlaps the set.
func (s *PartitionSet) OverlapsAny(ps []Partition) bool {
	for _, p := range ps {
		if s.whole[p.Table] {
			return true
		}
		if p.IsWholeTable() {
			// Any keyed entry or whole-table entry on this table overlaps.
			for q := range s.keys {
				if q.Table == p.Table {
					return true
				}
			}
			continue
		}
		if s.keys[p] {
			return true
		}
	}
	return false
}

// Overlaps reports whether any partition in this set overlaps any
// partition in o, honoring whole-table entries on either side.
func (s *PartitionSet) Overlaps(o *PartitionSet) bool {
	if o == nil {
		return false
	}
	for t := range s.whole {
		if o.touchesTable(t) {
			return true
		}
	}
	for t := range o.whole {
		if s.touchesTable(t) {
			return true
		}
	}
	for p := range s.keys {
		if o.keys[p] {
			return true
		}
	}
	return false
}

// touchesTable reports whether the set contains any partition of a table.
func (s *PartitionSet) touchesTable(t string) bool {
	if s.whole[t] {
		return true
	}
	for p := range s.keys {
		if p.Table == t {
			return true
		}
	}
	return false
}

// Slice returns the set contents in a stable order.
func (s *PartitionSet) Slice() []Partition {
	out := make([]Partition, 0, s.Len())
	for t := range s.whole {
		out = append(out, WholeTable(t))
	}
	for p := range s.keys {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Table != b.Table {
			return a.Table < b.Table
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return a.Key < b.Key
	})
	return out
}

// String renders the set for debugging.
func (s *PartitionSet) String() string {
	parts := s.Slice()
	strs := make([]string, len(parts))
	for i, p := range parts {
		strs[i] = p.String()
	}
	return "{" + strings.Join(strs, ", ") + "}"
}

// readPartitions inspects a WHERE clause and returns the partitions the
// query may read (§4.1). It finds top-level AND-conjuncts of the form
// `col = const` or `col IN (consts)` over partition columns. When no such
// conjunct exists — including when the clause is absent, uses OR at the top
// level around partition predicates, or compares partition columns
// non-constantly — the whole table is returned, which is the paper's
// conservative fallback.
func (m *tableMeta) readPartitions(where sqldb.Expr, params []sqldb.Value) []Partition {
	if len(m.partCols) == 0 {
		return []Partition{WholeTable(m.name)}
	}
	var found []Partition
	collectConjuncts(where, func(e sqldb.Expr) {
		switch e := e.(type) {
		case *sqldb.BinaryExpr:
			if e.Op != sqldb.OpEq {
				return
			}
			col, v, ok := constEqParts(e, params)
			if ok && m.partCols[col] {
				found = append(found, Partition{Table: m.name, Column: col, Key: v.Key()})
			}
		case *sqldb.InExpr:
			if e.Not {
				return
			}
			col, ok := e.Expr.(*sqldb.ColumnRef)
			if !ok || !m.partCols[col.Name] {
				return
			}
			var keys []Partition
			for _, item := range e.List {
				v, ok := constValueOf(item, params)
				if !ok {
					return // non-constant member: cannot bound
				}
				keys = append(keys, Partition{Table: m.name, Column: col.Name, Key: v.Key()})
			}
			found = append(found, keys...)
		}
	})
	if len(found) == 0 {
		return []Partition{WholeTable(m.name)}
	}
	return found
}

// collectConjuncts visits the top-level AND-conjuncts of e.
func collectConjuncts(e sqldb.Expr, visit func(sqldb.Expr)) {
	if e == nil {
		return
	}
	if be, ok := e.(*sqldb.BinaryExpr); ok && be.Op == sqldb.OpAnd {
		collectConjuncts(be.Left, visit)
		collectConjuncts(be.Right, visit)
		return
	}
	visit(e)
}

// constEqParts decomposes `col = const` (either operand order).
func constEqParts(e *sqldb.BinaryExpr, params []sqldb.Value) (string, sqldb.Value, bool) {
	if col, ok := e.Left.(*sqldb.ColumnRef); ok {
		if v, ok := constValueOf(e.Right, params); ok {
			return col.Name, v, true
		}
	}
	if col, ok := e.Right.(*sqldb.ColumnRef); ok {
		if v, ok := constValueOf(e.Left, params); ok {
			return col.Name, v, true
		}
	}
	return "", sqldb.Null(), false
}

func constValueOf(e sqldb.Expr, params []sqldb.Value) (sqldb.Value, bool) {
	switch e := e.(type) {
	case *sqldb.Literal:
		return e.Value, true
	case *sqldb.Param:
		if e.Index >= 0 && e.Index < len(params) {
			return params[e.Index], true
		}
	}
	return sqldb.Null(), false
}

// rowPartitions returns the partitions a concrete row belongs to: one per
// partition column, or the whole table when the table has none.
func (m *tableMeta) rowPartitions(get func(col string) sqldb.Value) []Partition {
	if len(m.partCols) == 0 {
		return []Partition{WholeTable(m.name)}
	}
	out := make([]Partition, 0, len(m.partCols))
	for col := range m.partCols {
		out = append(out, Partition{Table: m.name, Column: col, Key: get(col).Key()})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Column < out[j].Column })
	return out
}
