package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"

	"warp/internal/store/storefs"
)

// A manifest is the root of one checkpoint: it names every live section
// and the checkpoint file each currently lives in, and records the WAL
// cut — per-shard segment boundaries plus the global LSN — the
// checkpoint was taken at. Incremental checkpoints write only dirty
// sections into a fresh delta file and carry the rest forward by
// reference, so the manifest is what stitches base + deltas into one
// consistent snapshot. Manifests are tiny and installed atomically
// (temp file, fsync, rename), making the manifest rename the commit
// point of every checkpoint.
type manifest struct {
	seq    int64
	maxLSN int64
	// bounds maps shard id -> sequence number of the last WAL segment
	// the checkpoint covers. Recovery replays only segments after the
	// bound.
	bounds map[int]int64
	// sections maps section name -> checkpoint file sequence holding its
	// current contents; order preserves the writer's declaration order.
	sections []manifestSection
}

type manifestSection struct {
	name    string
	fileSeq int64
}

var manifestMagic = [8]byte{'W', 'A', 'R', 'P', 'M', 'A', 'N', '1'}

func manifestPath(dir string, seq int64) string {
	return filepath.Join(dir, fmt.Sprintf("manifest-%08d.mf", seq))
}

const manifestVersion = 1

func (m *manifest) encode() []byte {
	enc := NewEncoder()
	enc.Byte(manifestVersion)
	enc.Int(m.seq)
	enc.Int(m.maxLSN)
	ids := make([]int, 0, len(m.bounds))
	for id := range m.bounds {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	enc.Uvarint(uint64(len(ids)))
	for _, id := range ids {
		enc.Uvarint(uint64(id))
		enc.Int(m.bounds[id])
	}
	enc.Uvarint(uint64(len(m.sections)))
	for _, s := range m.sections {
		enc.String(s.name)
		enc.Int(s.fileSeq)
	}
	return enc.Bytes()
}

func decodeManifest(payload []byte) (*manifest, error) {
	dec := NewDecoder(payload)
	if v := dec.Byte(); v != manifestVersion {
		if err := dec.Err(); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("%w: unsupported manifest version %d", ErrCorrupt, v)
	}
	m := &manifest{seq: dec.Int(), maxLSN: dec.Int(), bounds: make(map[int]int64)}
	n := dec.Count()
	for i := 0; i < n; i++ {
		id := int(dec.Uvarint())
		m.bounds[id] = dec.Int()
	}
	n = dec.Count()
	for i := 0; i < n; i++ {
		m.sections = append(m.sections, manifestSection{name: dec.String(), fileSeq: dec.Int()})
	}
	if err := dec.Err(); err != nil {
		return nil, err
	}
	return m, nil
}

// fileRefs returns the set of checkpoint file sequences the manifest
// references.
func (m *manifest) fileRefs() map[int64]bool {
	refs := make(map[int64]bool)
	for _, s := range m.sections {
		refs[s.fileSeq] = true
	}
	return refs
}

// Blob files: small whole-in-memory payloads (manifests) wrapped in a
// magic + length + CRC-32C header, written to a temp file, fsynced, and
// renamed into place, so a crash mid-write leaves the old file or the
// new one — never a half-written file that validates.

func writeBlobFile(fs storefs.FS, path string, magic [8]byte, payload []byte) error {
	tmp := path + ".tmp"
	f, err := fs.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	var hdr [16]byte
	copy(hdr[0:8], magic[:])
	binary.LittleEndian.PutUint32(hdr[8:12], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[12:16], crc32.Checksum(payload, crcTable))
	if _, err := f.Write(hdr[:]); err != nil {
		f.Close()
		return err
	}
	if _, err := f.Write(payload); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := fs.Rename(tmp, path); err != nil {
		return err
	}
	return fs.SyncDir(filepath.Dir(path))
}

func readBlobFile(fs storefs.FS, path string, magic [8]byte) ([]byte, error) {
	data, err := fs.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(data) < 16 || [8]byte(data[0:8]) != magic {
		return nil, fmt.Errorf("%w: %s: bad header", ErrCorrupt, filepath.Base(path))
	}
	n := int(binary.LittleEndian.Uint32(data[8:12]))
	sum := binary.LittleEndian.Uint32(data[12:16])
	if n != len(data)-16 {
		return nil, fmt.Errorf("%w: %s: length mismatch", ErrCorrupt, filepath.Base(path))
	}
	payload := data[16:]
	if crc32.Checksum(payload, crcTable) != sum {
		return nil, fmt.Errorf("%w: %s: checksum failure", ErrCorrupt, filepath.Base(path))
	}
	return payload, nil
}

func writeManifestFile(fs storefs.FS, dir string, m *manifest) error {
	return writeBlobFile(fs, manifestPath(dir, m.seq), manifestMagic, m.encode())
}

func readManifestFile(fs storefs.FS, path string) (*manifest, error) {
	payload, err := readBlobFile(fs, path, manifestMagic)
	if err != nil {
		return nil, err
	}
	return decodeManifest(payload)
}
