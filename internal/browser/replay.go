package browser

import (
	"fmt"
	"net/url"
	"strings"

	"warp/internal/dom"
	"warp/internal/httpd"
	"warp/internal/merge"
)

// ReplayConfig selects the re-execution fidelity. The three Table 4
// configurations map to: {HasLog:false}, {HasLog:true, TextMerge:false},
// and {HasLog:true, TextMerge:true} (full WARP).
type ReplayConfig struct {
	// HasLog is false when the client had no WARP extension: no DOM-level
	// log exists, so an affected page cannot be verified or replayed and
	// the user must resolve it by hand (§2.3).
	HasLog bool
	// TextMerge enables three-way merging of text-field input (§5.3).
	TextMerge bool
	// UIConflict, when set, lets the application flag a semantic conflict
	// between the original and repaired page even if every event replays
	// (§5.4's account-balance example).
	UIConflict func(origBody, newBody string) bool
}

// FullReplay is the complete WARP configuration.
var FullReplay = ReplayConfig{HasLog: true, TextMerge: true}

// ConflictKind classifies replay conflicts.
type ConflictKind uint8

// Conflict kinds.
const (
	ConflictNoLog        ConflictKind = iota // no extension log for an affected page
	ConflictTargetGone                       // event target not found on repaired page
	ConflictMerge                            // three-way merge failed
	ConflictFieldChanged                     // no-merge mode: field changed under the user
	ConflictFrameBlocked                     // frame refused to load (X-Frame-Options)
	ConflictUI                               // application UI-conflict function fired
)

// String names the kind.
func (k ConflictKind) String() string {
	switch k {
	case ConflictNoLog:
		return "no-log"
	case ConflictTargetGone:
		return "target-gone"
	case ConflictMerge:
		return "merge-conflict"
	case ConflictFieldChanged:
		return "field-changed"
	case ConflictFrameBlocked:
		return "frame-blocked"
	case ConflictUI:
		return "ui-conflict"
	default:
		return fmt.Sprintf("conflict(%d)", uint8(k))
	}
}

// Conflict is one replay conflict, queued for the user to resolve (§5.4).
type Conflict struct {
	Kind    ConflictKind
	Client  string
	VisitID int64
	Detail  string
}

// Navigation describes a page transition the replayed visit performed: a
// clicked link, a submitted form, or a sub-frame load. The repair
// controller matches navigations to the original child page visits and
// recursively replays them.
type Navigation struct {
	Method  string
	URL     string
	Form    url.Values
	IsFrame bool
}

// Outcome is the result of replaying one page visit.
type Outcome struct {
	Conflicts   []Conflict
	Navigations []Navigation
	// Requests are the requests the page issued during replay (main
	// request chain and script activity), traced like normal execution.
	Requests []RequestTrace
	// UnmatchedOriginals are requests the visit issued during the original
	// execution that the replay did not re-issue — typically an undone
	// attack's requests. The repair controller cancels their effects.
	UnmatchedOriginals []RequestTrace
	// MainResponse is the response rendered for the visit's main request.
	MainResponse *httpd.Response
	// CookiesAfter is the clone browser's cookie jar after replay, used
	// for cookie invalidation when it diverges from the client's real
	// timeline (§5.3).
	CookiesAfter map[string]string
}

// Conflicted reports whether any conflict occurred.
func (o *Outcome) Conflicted() bool { return len(o.Conflicts) > 0 }

// ReplayVisit re-executes one recorded page visit in a cloned browser on
// the server (§5.3). mainResp, when non-nil, is the repaired response for
// the visit's main request as already computed by the caller; when nil the
// clone fetches the main request itself through the transport (matching it
// to the original request ID). origBody is the body the client originally
// received (for the UI-conflict hook); cookies is the clone's jar at this
// point in the client's repaired timeline. The clone runs sandboxed: its
// only capability is the transport and the given cookies.
func ReplayVisit(log *VisitLog, mainResp *httpd.Response, origBody string, cookies map[string]string, transport Transport, cfg ReplayConfig) *Outcome {
	out := &Outcome{CookiesAfter: cookies}
	if !cfg.HasLog {
		out.Conflicts = append(out.Conflicts, Conflict{
			Kind: ConflictNoLog, Client: log.ClientID, VisitID: log.VisitID,
			Detail: "client has no WARP extension log; manual inspection required",
		})
		return out
	}

	clone := &Browser{
		ClientID:     log.ClientID,
		HasExtension: true,
		transport:    transport,
		cookies:      cookies,
		visitSeq:     log.VisitID,
	}
	page := &Page{Browser: clone, URL: log.URL}
	page.Log = &VisitLog{
		ClientID: log.ClientID, VisitID: log.VisitID,
		ParentVisit: log.ParentVisit, IsFrame: log.IsFrame,
		URL: log.URL, Method: log.Method, FormEncoded: log.FormEncoded,
	}
	page.replayOrig = log

	// Obtain the repaired main response: fetch it (following redirects, as
	// the original browser did) unless the caller provided it.
	if mainResp == nil && log.AttackerHTML == "" {
		form := url.Values{}
		if log.FormEncoded != "" {
			if vals, err := url.ParseQuery(log.FormEncoded); err == nil {
				form = vals
			}
		}
		resp, _ := page.roundTrip(log.Method, log.URL, form)
		for i := 0; i < 4 && resp.Status == 303 && resp.Headers["Location"] != ""; i++ {
			resp, _ = page.roundTrip("GET", resp.Headers["Location"], url.Values{})
		}
		mainResp = resp
	} else if mainResp != nil && len(log.Requests) > 0 {
		// The caller executed the main request: consume its original trace
		// so it is not reported as cancelled.
		page.replayMatched = map[int]bool{0: true}
	}
	out.MainResponse = mainResp

	// Render the repaired main response (or the attacker's recorded page,
	// which is outside WARP's control and unchanged).
	switch {
	case log.AttackerHTML != "":
		page.DOM = dom.Parse(log.AttackerHTML)
	case log.IsFrame && mainResp != nil && strings.EqualFold(mainResp.Headers["X-Frame-Options"], "DENY"):
		page.Blocked = true
		out.Conflicts = append(out.Conflicts, Conflict{
			Kind: ConflictFrameBlocked, Client: log.ClientID, VisitID: log.VisitID,
			Detail: fmt.Sprintf("frame load refused; %d recorded events not replayed", len(log.Events)),
		})
	case mainResp != nil:
		page.DOM = dom.Parse(mainResp.Body)
	default:
		page.DOM = dom.NewDocument()
	}

	// Re-run page scripts: on a repaired page the injected payload is
	// gone, so the attack's requests are simply never issued (§5).
	if !page.Blocked {
		page.runScripts()
		// Sub-frame loads become navigations for the controller.
		for _, f := range page.DOM.ElementsByTag("iframe") {
			if src, ok := f.Attr("src"); ok && src != "" {
				out.Navigations = append(out.Navigations, Navigation{Method: "GET", URL: src, IsFrame: true})
			}
		}
	}

	// Replay the user's DOM-level events.
	if !page.Blocked {
		for _, ev := range log.Events {
			replayEvent(page, ev, cfg, out)
		}
	}

	if cfg.UIConflict != nil && mainResp != nil && log.AttackerHTML == "" {
		// The application may flag semantically important page changes even
		// when replay succeeds.
		if cfg.UIConflict(origBody, mainResp.Body) {
			out.Conflicts = append(out.Conflicts, Conflict{
				Kind: ConflictUI, Client: log.ClientID, VisitID: log.VisitID,
				Detail: "application UI-conflict function flagged the repaired page",
			})
		}
	}

	out.Requests = page.Log.Requests
	for i, tr := range log.Requests {
		if !page.replayMatched[i] {
			out.UnmatchedOriginals = append(out.UnmatchedOriginals, tr)
		}
	}
	out.CookiesAfter = clone.cookies
	return out
}

// replayEvent applies one recorded event to the replayed page.
func replayEvent(p *Page, ev Event, cfg ReplayConfig, out *Outcome) {
	log := p.replayOrig
	target := dom.Resolve(p.DOM, ev.XPath)
	if target == nil {
		out.Conflicts = append(out.Conflicts, Conflict{
			Kind: ConflictTargetGone, Client: log.ClientID, VisitID: log.VisitID,
			Detail: fmt.Sprintf("%s target %s not found on repaired page", ev.Kind, ev.XPath),
		})
		return
	}
	switch ev.Kind {
	case EventInput:
		current := fieldValue(target)
		if cfg.TextMerge {
			merged, ok := merge.Merge(ev.Base, current, ev.Value)
			if !ok {
				out.Conflicts = append(out.Conflicts, Conflict{
					Kind: ConflictMerge, Client: log.ClientID, VisitID: log.VisitID,
					Detail: fmt.Sprintf("user input into %s conflicts with repaired content (base=%.40q cur=%.40q val=%.40q)", ev.XPath, ev.Base, current, ev.Value),
				})
				return
			}
			setFieldValue(target, merged)
			return
		}
		// Without text merging, the field must be exactly as the user found
		// it; otherwise their keystrokes cannot be re-applied (§8.3).
		if current != ev.Base {
			out.Conflicts = append(out.Conflicts, Conflict{
				Kind: ConflictFieldChanged, Client: log.ClientID, VisitID: log.VisitID,
				Detail: fmt.Sprintf("field %s changed during repair and text merge is disabled", ev.XPath),
			})
			return
		}
		setFieldValue(target, ev.Value)
	case EventCheck:
		if ev.Value == "on" {
			target.SetAttr("checked", "checked")
		}
	case EventClick:
		href := target.AttrOr("href", "")
		if href == "" {
			out.Conflicts = append(out.Conflicts, Conflict{
				Kind: ConflictTargetGone, Client: log.ClientID, VisitID: log.VisitID,
				Detail: fmt.Sprintf("click target %s is no longer a link", ev.XPath),
			})
			return
		}
		out.Navigations = append(out.Navigations, Navigation{Method: "GET", URL: href, Form: url.Values{}})
	case EventSubmit:
		method, action, vals := formSubmission(target)
		nav := Navigation{Method: strings.ToUpper(method), URL: action, Form: vals}
		if nav.Method == "GET" && len(vals) > 0 {
			nav.URL = action + "?" + vals.Encode()
			nav.Form = url.Values{}
		}
		out.Navigations = append(out.Navigations, nav)
	}
}
