package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"warp/internal/obs"
	"warp/internal/store/storefs"
)

// Options tunes a Store. The zero value selects the defaults below.
type Options struct {
	// SyncEveryAppend makes Append wait until its record is fsynced.
	// Concurrent appenders on one shard share fsyncs (group commit): one
	// leader syncs while followers' frames accumulate in the buffer for
	// the next sync. Off by default: records are fsynced by the
	// group-commit window instead, trading a bounded post-crash
	// data-loss window (at most GroupWindow) for an fsync-free hot path.
	SyncEveryAppend bool
	// GroupWindow is the maximum delay between fsyncs of buffered
	// records (default 2ms).
	GroupWindow time.Duration
	// SegmentBytes rotates a shard's WAL to a new segment file past this
	// size (default 16 MiB).
	SegmentBytes int64
	// SnapshotBytes signals NeedSnapshot after this many WAL bytes
	// (summed across shards) since the last checkpoint (default 64 MiB);
	// negative disables the signal.
	SnapshotBytes int64
	// Shards is the number of independent WAL segment chains. Records
	// are routed by table-group key: the empty group (metadata) always
	// lands on shard 0, named groups spread over the rest. Each shard
	// has its own group-commit clock, so groups on different shards
	// fsync in parallel. 0 or 1 means a single chain; values above 100
	// are clamped (the segment filename format holds two shard digits).
	Shards int
	// ShardOf overrides the default hash router: it maps a non-empty
	// group key to a shard index. Returning an out-of-range index (e.g.
	// -1 for "unknown table") falls back to shard 0. It must be a pure
	// function, stable across restarts.
	ShardOf func(group string) int
	// CompactEvery forces a full checkpoint (every live section
	// rewritten, superseding all deltas) after this many incremental
	// checkpoints (default 8). A full checkpoint lets the prune step
	// reclaim the whole delta chain.
	CompactEvery int
	// ChunkBytes is the spill threshold of the streaming checkpoint
	// encoder: sections are written as chunks of roughly this size, so
	// checkpoint memory stays bounded regardless of section size
	// (default 256 KiB).
	ChunkBytes int
	// FS is the filesystem the store runs on; nil selects the real OS
	// filesystem. Tests substitute an error-injecting implementation
	// (internal/store/faultfs) to exercise the failure model.
	FS storefs.FS
	// RetryAttempts is the total number of tries a transient write or
	// segment-create error gets before surfacing (default 3). Fsync is
	// never retried — see the fsync-poisoning rule (shard.go).
	RetryAttempts int
	// RetryBackoff is the initial backoff between retries, doubling up
	// to a 50ms cap (default 1ms).
	RetryBackoff time.Duration
	// ScrubInterval starts a background scrubber that re-verifies the
	// CRCs of cold WAL segments and live checkpoint files at this
	// period, quarantining corrupt files (docs/persistence.md "Failure
	// model"). 0 disables the scrubber; ScrubNow remains available.
	ScrubInterval time.Duration
}

func (o Options) withDefaults() Options {
	if o.GroupWindow <= 0 {
		o.GroupWindow = 2 * time.Millisecond
	}
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 16 << 20
	}
	if o.SnapshotBytes == 0 {
		o.SnapshotBytes = 64 << 20
	}
	if o.Shards < 1 {
		o.Shards = 1
	}
	if o.Shards > 100 {
		o.Shards = 100 // wal-<shard>- carries two digits: ids 0..99
	}
	if o.CompactEvery <= 0 {
		o.CompactEvery = 8
	}
	if o.ChunkBytes <= 0 {
		o.ChunkBytes = 256 << 10
	}
	if o.FS == nil {
		o.FS = storefs.OS
	}
	if o.RetryAttempts <= 0 {
		o.RetryAttempts = 3
	}
	if o.RetryBackoff <= 0 {
		o.RetryBackoff = time.Millisecond
	}
	return o
}

// Record is one typed WAL record. LSN is its global log sequence number:
// unique and totally ordered across shards, assigned at append time.
type Record struct {
	LSN     int64
	Type    byte
	Payload []byte
}

// Recovery reports what Open found on disk: the newest loadable
// checkpoint (manifest plus the delta files it references), exposed as
// named sections, and the merged WAL tail after it.
type Recovery struct {
	// Manifest is true when a checkpoint was loaded; its sections are
	// read with ReadSection.
	Manifest bool
	// Records is the WAL tail after the checkpoint, all shards merged
	// into global-LSN order.
	Records []Record
	// TailCorrupt is true when at least one shard's replay stopped at a
	// torn or corrupt frame (or an unreachable segment beyond a gap):
	// Records holds the consistent per-shard prefixes before that.
	TailCorrupt bool
	// SnapshotFallback is true when a newer manifest existed but failed
	// validation and an older checkpoint was used instead.
	SnapshotFallback bool

	dir      string
	fs       storefs.FS
	sections map[string]sectionRef
	order    []string
}

type sectionRef struct {
	fileSeq int64
	offset  int64
}

// SectionNames returns the checkpoint's section names in manifest
// (declaration) order.
func (r *Recovery) SectionNames() []string { return r.order }

// HasSection reports whether the checkpoint holds a section.
func (r *Recovery) HasSection(name string) bool {
	_, ok := r.sections[name]
	return ok
}

// ReadSection reads and validates one section's payload, returning a
// decoder over it. Sections are read one at a time, so recovery memory
// is bounded by the largest single section, not the checkpoint.
func (r *Recovery) ReadSection(name string) (*Decoder, error) {
	ref, ok := r.sections[name]
	if !ok {
		return nil, fmt.Errorf("store: checkpoint has no section %q", name)
	}
	payload, err := readSectionPayload(r.fs, ckptPath(r.dir, ref.fileSeq), ref.offset)
	if err != nil {
		return nil, err
	}
	return NewDecoder(payload), nil
}

// ErrCrashed is returned by operations on a store after Crash.
var ErrCrashed = errors.New("store: store has crashed")

// Store is an open persistence directory: Options.Shards WAL segment
// chains plus the manifest-rooted checkpoint history. Safe for
// concurrent use.
type Store struct {
	dir  string
	opts Options
	fs   storefs.FS

	lsn    atomic.Int64 // global record sequence number
	shards []*shard

	walSince atomic.Int64 // WAL bytes since the last checkpoint
	snapped  atomic.Bool  // NeedSnapshot already signalled this interval
	needSnap chan struct{}

	// ckptMu serializes checkpoints and guards the fields below.
	ckptMu    sync.Mutex
	manifest  *manifest
	ckptSeq   int64
	sinceFull int
	lastCkpt  CheckpointStats
	// orphans maps shard ids outside the active range (a previous run
	// used more shards) to their highest on-disk segment seq. Their
	// records were recovered at Open; the next checkpoint covers and
	// prunes them.
	orphans map[int]int64

	stateMu sync.Mutex
	dead    bool
	closed  bool

	// faultMu guards the storage-fault latch. A fault is any storage
	// error that escaped the retry policy: an fsync poisoning, an
	// exhausted write retry, a checkpoint that could not be written, or
	// scrubber-detected corruption. Faults are reported once per
	// signal-channel slot; the deployment layer (internal/core) listens
	// on FaultSignal and responds with a fence checkpoint or degraded
	// mode.
	faultMu   sync.Mutex
	lastFault error
	faultCh   chan struct{}
	// sealedTorn records segments sealed by fsync poisoning: their
	// tails are legitimately torn, so the scrubber must not flag them.
	sealedTorn map[string]bool
	// quarantined records files the scrubber found corrupt; prune
	// renames them to <name>.quarantine instead of deleting so an
	// operator can inspect them (scrub.go).
	quarantined map[string]bool

	stopOnce  sync.Once
	flushStop chan struct{}
	flushDone chan struct{}
	scrubStop chan struct{}
	scrubDone chan struct{}
	scrubMu   sync.Mutex
	scrubStat ScrubStats
}

// reportFault latches a storage fault and signals FaultSignal (capacity
// one: concurrent faults coalesce). ErrCrashed and closed-store errors
// are not faults.
func (s *Store) reportFault(err error) {
	if err == nil || errors.Is(err, ErrCrashed) {
		return
	}
	faultsReported.Inc()
	s.faultMu.Lock()
	s.lastFault = err
	s.faultMu.Unlock()
	select {
	case s.faultCh <- struct{}{}:
	default:
	}
}

// LastFault returns the most recent storage fault, or nil.
func (s *Store) LastFault() error {
	s.faultMu.Lock()
	defer s.faultMu.Unlock()
	return s.lastFault
}

// FaultSignal delivers one signal per outstanding storage fault. The
// deployment layer listens and responds with a fence checkpoint
// (re-securing in-memory state the WAL failed to) or, if that fails
// too, degraded read-only mode.
func (s *Store) FaultSignal() <-chan struct{} { return s.faultCh }

// markSealedTorn records an fsync-poisoned segment for the scrubber.
func (s *Store) markSealedTorn(path string) {
	s.faultMu.Lock()
	defer s.faultMu.Unlock()
	s.sealedTorn[filepath.Base(path)] = true
}

func (s *Store) isSealedTorn(name string) bool {
	s.faultMu.Lock()
	defer s.faultMu.Unlock()
	return s.sealedTorn[name]
}

func parseSeqName(name, prefix, suffix string, seq *int64) bool {
	if len(name) != len(prefix)+8+len(suffix) ||
		name[:len(prefix)] != prefix || name[len(name)-len(suffix):] != suffix {
		return false
	}
	n, err := fmt.Sscanf(name[len(prefix):len(prefix)+8], "%d", seq)
	return err == nil && n == 1
}

// parseSegName parses wal-<shard>-<seq>.log.
func parseSegName(name string, id *int, seq *int64) bool {
	if len(name) != len("wal-")+2+1+8+len(".log") || name[:4] != "wal-" || name[6] != '-' ||
		name[len(name)-4:] != ".log" {
		return false
	}
	var shardID int64
	n, err := fmt.Sscanf(name[4:6], "%d", &shardID)
	if err != nil || n != 1 {
		return false
	}
	n, err = fmt.Sscanf(name[7:15], "%d", seq)
	if err != nil || n != 1 {
		return false
	}
	*id = int(shardID)
	return true
}

// errBadWALRecord marks a store-level record parse failure (missing LSN
// or type byte, or non-monotonic LSN) inside a frame whose checksum
// validated; recovery treats it exactly like a torn tail.
var errBadWALRecord = errors.New("store: malformed WAL record")

// truncateFile durably truncates a file to n bytes.
func truncateFile(fs storefs.FS, path string, n int64) error {
	f, err := fs.OpenFile(path, os.O_WRONLY, 0)
	if err != nil {
		return err
	}
	if err := f.Truncate(n); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Open opens (creating if needed) a persistence directory, recovers the
// newest valid checkpoint (manifest + base + deltas) plus the merged
// sharded-WAL tail after it, and starts fresh segments for new appends.
// Possibly-torn previous tail segments are never appended to again.
//
// Recovery layers, in order: the manifest names every live section and
// the delta file holding it; sections load the checkpointed state; then
// each shard's WAL tail replays its consistent prefix, all shards merged
// into global-LSN order. A torn tail on one shard drops only that
// shard's unsynced suffix (reported via TailCorrupt). A manifest whose
// referenced delta file is missing is a hard error — loading a partial
// checkpoint and calling it recovered would be silent data loss — while
// a corrupt newest manifest or delta falls back to the previous
// checkpoint.
func Open(dir string, opts Options) (*Store, *Recovery, error) {
	opts = opts.withDefaults()
	fs := opts.FS
	if err := fs.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, err
	}
	entries, err := fs.ReadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	walFiles := make(map[int][]int64)
	var manifestSeqs []int64
	maxCkptSeq := int64(0)
	tmpCleaned := false
	for _, e := range entries {
		var seq int64
		var id int
		// Orphaned temp files are leftovers of a checkpoint or manifest
		// write that died before its rename: never referenced by
		// anything, safe to delete, and deleting them keeps a failed
		// checkpoint from slowly filling the disk with garbage.
		if strings.HasSuffix(e.Name(), ".tmp") {
			if err := fs.Remove(filepath.Join(dir, e.Name())); err == nil {
				tmpCleaned = true
			}
			continue
		}
		switch {
		case parseSegName(e.Name(), &id, &seq):
			walFiles[id] = append(walFiles[id], seq)
		case parseSeqName(e.Name(), "manifest-", ".mf", &seq):
			manifestSeqs = append(manifestSeqs, seq)
			if seq > maxCkptSeq {
				maxCkptSeq = seq
			}
		case parseSeqName(e.Name(), "ckpt-", ".sec", &seq):
			if seq > maxCkptSeq {
				maxCkptSeq = seq
			}
		case parseSeqName(e.Name(), "wal-", ".log", &seq), parseSeqName(e.Name(), "snap-", ".snap", &seq):
			// The pre-sharding layout (wal-<seq>.log + snap-<seq>.snap).
			// Opening it as an empty store would silently discard the
			// deployment's history; refuse instead.
			return nil, nil, fmt.Errorf("store: %s holds the legacy unsharded layout (found %s), which this version cannot read; recover it with the previous release or start a fresh directory", dir, e.Name())
		}
	}
	sort.Slice(manifestSeqs, func(i, j int) bool { return manifestSeqs[i] > manifestSeqs[j] })
	if tmpCleaned {
		_ = fs.SyncDir(dir)
	}

	rec := &Recovery{dir: dir, fs: fs}
	var mf *manifest
	var mfErr error
	for i, seq := range manifestSeqs {
		m, err := readManifestFile(fs, manifestPath(dir, seq))
		if err != nil {
			mfErr = err
			continue
		}
		sections, order, err := indexSections(fs, dir, m)
		if err != nil {
			if errors.Is(err, os.ErrNotExist) {
				return nil, nil, fmt.Errorf("store: manifest %d references a missing checkpoint file: %w", seq, err)
			}
			mfErr = err
			continue
		}
		mf = m
		rec.Manifest = true
		rec.sections = sections
		rec.order = order
		rec.SnapshotFallback = i > 0
		break
	}
	if mf == nil && mfErr != nil {
		// Checkpoints existed but none validates: refusing to run from a
		// silently wrong base state beats inventing one.
		return nil, nil, mfErr
	}

	// Replay each shard's consecutive run of segments after the
	// checkpoint's per-shard boundary, then merge by global LSN. A
	// missing segment inside a shard's run is a gap — typically segments
	// pruned by a newer checkpoint whose manifest later failed
	// validation — and everything past it was appended against state
	// this recovery does not have; stopping there keeps each shard's
	// recovered stream a true prefix.
	maxLSN := int64(0)
	if mf != nil {
		maxLSN = mf.maxLSN
	}
	perShard := make(map[int][]Record)
	shardIDs := make([]int, 0, len(walFiles))
	for id, seqs := range walFiles {
		shardIDs = append(shardIDs, id)
		sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
		bound := int64(-1)
		if mf != nil {
			if b, ok := mf.bounds[id]; ok {
				bound = b
			}
		}
		next := bound + 1
		if bound < 0 {
			next = seqs[0]
		}
		have := make(map[int64]bool, len(seqs))
		for _, seq := range seqs {
			have[seq] = true
		}
		var recs []Record
		corrupt := false
		prevLSN := int64(0)
		tornSeg, tornLen := int64(-1), int64(0)
		for have[next] && !corrupt {
			validLen, clean, err := readSegment(fs, segName(dir, id, next), func(payload []byte) error {
				lsn, k := binary.Uvarint(payload)
				if k <= 0 || k >= len(payload) || int64(lsn) <= prevLSN {
					return errBadWALRecord
				}
				prevLSN = int64(lsn)
				p := make([]byte, len(payload)-k-1)
				copy(p, payload[k+1:])
				recs = append(recs, Record{LSN: int64(lsn), Type: payload[k], Payload: p})
				return nil
			})
			if err != nil && !errors.Is(err, errBadWALRecord) {
				return nil, nil, err
			}
			if err != nil || !clean {
				corrupt = true
				tornSeg, tornLen = next, validLen
				break
			}
			next++
		}
		if !corrupt && seqs[len(seqs)-1] >= next {
			corrupt = true // unreachable segments beyond a gap
		}
		if corrupt {
			rec.TailCorrupt = true
		}
		// A torn frame in the newest segment of a shard's chain is the
		// ordinary crash tail. Truncate the file to its valid prefix so
		// the chain stays appendable: without this, records fsynced into
		// segments started after this recovery would sit beyond the torn
		// frame and a second recovery would never reach them. A torn
		// frame with later segments present is different — rotation
		// fsyncs a segment before starting the next, so that is real
		// corruption and replay stops without touching the file.
		if tornSeg >= 0 && tornSeg == seqs[len(seqs)-1] {
			if err := truncateFile(fs, segName(dir, id, tornSeg), tornLen); err != nil {
				return nil, nil, fmt.Errorf("store: neutralizing torn tail of shard %d: %w", id, err)
			}
		}
		if prevLSN > maxLSN {
			maxLSN = prevLSN
		}
		perShard[id] = recs
	}
	sort.Ints(shardIDs)
	rec.Records = mergeByLSN(perShard, shardIDs)

	s := &Store{
		dir:         dir,
		opts:        opts,
		fs:          fs,
		manifest:    mf,
		ckptSeq:     maxCkptSeq + 1,
		needSnap:    make(chan struct{}, 1),
		orphans:     make(map[int]int64),
		faultCh:     make(chan struct{}, 1),
		sealedTorn:  make(map[string]bool),
		quarantined: make(map[string]bool),
		flushStop:   make(chan struct{}),
		flushDone:   make(chan struct{}),
	}
	s.lsn.Store(maxLSN)
	for id, seqs := range walFiles {
		if id >= opts.Shards {
			s.orphans[id] = seqs[len(seqs)-1]
		}
	}
	s.shards = make([]*shard, opts.Shards)
	for i := 0; i < opts.Shards; i++ {
		start := int64(1)
		if seqs := walFiles[i]; len(seqs) > 0 {
			start = seqs[len(seqs)-1] + 1
		}
		if mf != nil {
			if b, ok := mf.bounds[i]; ok && b+1 > start {
				start = b + 1
			}
		}
		sh, err := newShard(i, dir, opts, start)
		if err != nil {
			for _, prev := range s.shards[:i] {
				prev.crash()
			}
			return nil, nil, err
		}
		sh.onFault = s.reportFault
		sh.onSeal = s.markSealedTorn
		s.shards[i] = sh
	}
	if opts.Shards > 1 {
		// Rotating the metadata shard flushes and fsyncs its whole
		// buffer; sync the data shards first so the rotation cannot make
		// a metadata record durable ahead of its table records (the same
		// barrier syncAll enforces on the periodic path).
		s.shards[0].preRotate = func() error {
			for i := 1; i < len(s.shards); i++ {
				sh := s.shards[i]
				sh.mu.Lock()
				extent := sh.appended
				sh.mu.Unlock()
				if err := sh.syncUpTo(extent, false); err != nil {
					return err
				}
			}
			return nil
		}
	}
	go s.flusher()
	if opts.ScrubInterval > 0 {
		s.scrubStop = make(chan struct{})
		s.scrubDone = make(chan struct{})
		go s.scrubber()
	}
	return s, rec, nil
}

// indexSections validates every checkpoint file a manifest references —
// frame CRCs, per-section CRCs, trailer counts — and resolves each
// manifest section to its file offset. A missing file surfaces as
// os.ErrNotExist; a manifest entry absent from its file is ErrCorrupt.
func indexSections(fs storefs.FS, dir string, m *manifest) (map[string]sectionRef, []string, error) {
	offsets := make(map[int64]map[string]int64)
	for fileSeq := range m.fileRefs() {
		offs, err := validateSectionFile(fs, ckptPath(dir, fileSeq))
		if err != nil {
			return nil, nil, err
		}
		offsets[fileSeq] = offs
	}
	sections := make(map[string]sectionRef, len(m.sections))
	order := make([]string, 0, len(m.sections))
	for _, s := range m.sections {
		off, ok := offsets[s.fileSeq][s.name]
		if !ok {
			return nil, nil, fmt.Errorf("%w: manifest section %q missing from checkpoint %d", ErrCorrupt, s.name, s.fileSeq)
		}
		sections[s.name] = sectionRef{fileSeq: s.fileSeq, offset: off}
		order = append(order, s.name)
	}
	return sections, order, nil
}

// mergeByLSN merges per-shard record streams (each already
// LSN-monotonic) into one globally ordered stream.
func mergeByLSN(perShard map[int][]Record, ids []int) []Record {
	total := 0
	for _, recs := range perShard {
		total += len(recs)
	}
	if total == 0 {
		return nil
	}
	out := make([]Record, 0, total)
	idx := make(map[int]int, len(ids))
	for len(out) < total {
		best := -1
		var bestLSN int64
		for _, id := range ids {
			i := idx[id]
			if i >= len(perShard[id]) {
				continue
			}
			if best < 0 || perShard[id][i].LSN < bestLSN {
				best, bestLSN = id, perShard[id][i].LSN
			}
		}
		out = append(out, perShard[best][idx[best]])
		idx[best]++
	}
	return out
}

// Dir returns the persistence directory.
func (s *Store) Dir() string { return s.dir }

// Dead reports whether the store has crashed (Crash was called).
func (s *Store) Dead() bool {
	s.stateMu.Lock()
	defer s.stateMu.Unlock()
	return s.dead
}

// NeedSnapshot signals (at most once per checkpoint interval) that the
// WAL has grown past Options.SnapshotBytes and a checkpoint would bound
// recovery time.
func (s *Store) NeedSnapshot() <-chan struct{} { return s.needSnap }

// WALBytesSinceSnapshot returns the bytes appended across all shards
// since the last checkpoint (or since Open).
func (s *Store) WALBytesSinceSnapshot() int64 { return s.walSince.Load() }

// Append writes one typed record to shard 0, the metadata shard. With
// SyncEveryAppend it returns once the record is durable; otherwise the
// record becomes durable within GroupWindow.
func (s *Store) Append(typ byte, payload []byte) error {
	return s.AppendGroup("", typ, payload)
}

// AppendGroup writes one typed record to the shard its table-group key
// routes to. Records within one group always share a shard, so their
// relative order is preserved by that shard's file order; cross-group
// order is preserved by the global LSN each record carries.
func (s *Store) AppendGroup(group string, typ byte, payload []byte) error {
	var start time.Time
	if obs.Enabled() {
		start = time.Now()
	}
	sh := s.shards[s.shardOf(group)]
	sh.mu.Lock()
	if sh.dead || sh.closed {
		sh.mu.Unlock()
		return ErrCrashed
	}
	// The LSN is assigned under the shard lock, so each shard's file
	// order is LSN-monotonic — the invariant recovery's merge relies on.
	lsn := s.lsn.Add(1)
	frame := make([]byte, 0, binary.MaxVarintLen64+1+len(payload))
	frame = binary.AppendUvarint(frame, uint64(lsn))
	frame = append(frame, typ)
	frame = append(frame, payload...)
	target, err := sh.append(frame)
	if err != nil {
		sh.mu.Unlock()
		s.reportFault(err)
		return err
	}
	n := int64(frameHeaderLen + len(frame))
	since := s.walSince.Add(n)
	if s.opts.SnapshotBytes > 0 && since >= s.opts.SnapshotBytes &&
		s.snapped.CompareAndSwap(false, true) {
		select {
		case s.needSnap <- struct{}{}:
		default:
		}
	}
	if s.opts.SyncEveryAppend {
		err = sh.waitSyncedLocked(target)
	}
	sh.mu.Unlock()
	walAppends.Inc()
	walAppendBytes.Add(uint64(n))
	if !start.IsZero() {
		walAppendHist.Observe(time.Since(start))
	}
	return err
}

// Sync makes every record appended before the call durable, on every
// shard.
func (s *Store) Sync() error { return s.syncAll(false) }

// syncAll is the single durability pass every fsync path shares (Sync,
// the flusher; segment rotation runs the same barrier via preRotate).
// It captures the metadata shard's extent first, syncs the data shards,
// then syncs shard 0 up to the captured extent — as a prefix flush, so
// nothing beyond it reaches the OS. Why this ordering holds: a metadata
// record (say, a history action) is appended after the table records it
// describes; if it falls within shard 0's captured extent, its records
// fall within the data shards' later-captured extents and are durable
// by the time shard 0 syncs. A crash anywhere in the pass can therefore
// never keep a metadata record while losing its prerequisites — the
// residual window is the harmless inverse (table records durable, their
// metadata not yet: unattributed row versions, the analog of redo past
// the commit point).
func (s *Store) syncAll(quiet bool) error {
	extents := s.captureExtents()
	for i := 1; i < len(s.shards); i++ {
		if err := s.shards[i].syncUpTo(extents[i], quiet); err != nil {
			return err
		}
	}
	return s.shards[0].syncUpTo(extents[0], quiet)
}

// captureExtents snapshots every shard's appended byte count, shard 0
// first (the ordering syncAll's causality argument relies on).
func (s *Store) captureExtents() []int64 {
	extents := make([]int64, len(s.shards))
	for i, sh := range s.shards {
		sh.mu.Lock()
		extents[i] = sh.appended
		sh.mu.Unlock()
	}
	return extents
}

func (s *Store) flusher() {
	defer close(s.flushDone)
	tick := time.NewTicker(s.opts.GroupWindow)
	defer tick.Stop()
	for {
		select {
		case <-s.flushStop:
			return
		case <-tick.C:
			_ = s.syncAll(true)
		}
	}
}

// CheckpointStats describes the last checkpoint written.
type CheckpointStats struct {
	// Seq is the checkpoint's sequence number.
	Seq int64
	// Full is true when every section was rewritten (no deltas carried).
	Full bool
	// Written lists the sections written into this checkpoint's delta
	// file; Kept lists the sections carried forward by reference.
	Written []string
	Kept    []string
	// Bytes is the size of the delta file written.
	Bytes int64
}

// LastCheckpoint returns statistics for the most recent successful
// checkpoint of this store instance.
func (s *Store) LastCheckpoint() CheckpointStats {
	s.ckptMu.Lock()
	defer s.ckptMu.Unlock()
	return s.lastCkpt
}

// CheckpointWriter receives a checkpoint's sections. For every live
// section the builder either writes it (Section) or carries the
// previous checkpoint's copy forward (Keep); sections it does neither
// for cease to exist. Keep fails — forcing a write — when there is no
// previous checkpoint, when the section is new, or when the store has
// decided this checkpoint is a full compaction.
type CheckpointWriter struct {
	st        *Store
	fw        *sectionFileWriter
	fileSeq   int64
	allowKeep bool
	prevSecs  map[string]int64

	enc      *Encoder
	secStart time.Time // start of the section being streamed (obs)
	sections []manifestSection
	written  []string
	kept     []string
	err      error
}

// Section begins a new section and returns its streaming encoder, valid
// until the next Section call (or the end of the build). The encoder
// spills chunks of Options.ChunkBytes to disk as it grows, so encoding
// a section of any size uses bounded memory.
func (cw *CheckpointWriter) Section(name string) *Encoder {
	cw.closeSection()
	if obs.Enabled() {
		cw.secStart = time.Now()
	}
	if cw.err == nil {
		if err := cw.fw.begin(name); err != nil {
			cw.err = err
		}
	}
	cw.sections = append(cw.sections, manifestSection{name: name, fileSeq: cw.fileSeq})
	cw.written = append(cw.written, name)
	cw.enc = newStreamEncoder(cw.st.opts.ChunkBytes, func(b []byte) error {
		if cw.err != nil {
			return cw.err
		}
		if err := cw.fw.chunk(b); err != nil {
			cw.err = err
			return err
		}
		return nil
	})
	return cw.enc
}

// Keep carries a section forward from the previous checkpoint by
// reference. It reports false when the caller must write the section
// instead.
func (cw *CheckpointWriter) Keep(name string) bool {
	if !cw.allowKeep {
		return false
	}
	fileSeq, ok := cw.prevSecs[name]
	if !ok {
		return false
	}
	cw.sections = append(cw.sections, manifestSection{name: name, fileSeq: fileSeq})
	cw.kept = append(cw.kept, name)
	return true
}

func (cw *CheckpointWriter) closeSection() {
	if cw.enc == nil {
		return
	}
	cw.enc.flush()
	if err := cw.enc.spillErr(); err != nil && cw.err == nil {
		cw.err = err
	}
	cw.enc = nil
	if !cw.secStart.IsZero() {
		ckptSectionHist.Observe(time.Since(cw.secStart))
		cw.secStart = time.Time{}
	}
}

// WriteCheckpoint rotates every WAL shard, streams the sections the
// build function emits into a new delta file, and atomically installs a
// manifest referencing them plus any sections carried forward. It then
// prunes WAL segments, delta files, and manifests the new checkpoint
// superseded. Incremental checkpoints write only what the builder
// chooses to; every Options.CompactEvery-th checkpoint refuses Keep,
// forcing a full rewrite that lets the whole prior delta chain go.
//
// The caller must quiesce mutators for the duration of the call: every
// state change that is WAL-logged must either be fully reflected in an
// emitted (or kept) section or append only after the rotation point. No
// store locks are held while build runs — the builder typically takes
// the application's own locks, which concurrent appenders hold while
// calling Append, so holding store locks across build would invert that
// order and deadlock. Appends that race the build (e.g. visit-log
// upserts, which are idempotent) land in post-rotation segments and
// replay over the checkpoint.
func (s *Store) WriteCheckpoint(build func(*CheckpointWriter) error) error {
	var startedAt time.Time
	if obs.Enabled() {
		startedAt = time.Now()
	}
	s.ckptMu.Lock()
	defer s.ckptMu.Unlock()

	// Rotate first: records appended after this point land in segments
	// that survive the prune and replay over the new checkpoint. Data
	// shards rotate (and so fsync) before the metadata shard, keeping
	// syncAll's causal order; shard 0's preRotate barrier then finds
	// them already durable.
	bounds := make(map[int]int64)
	for i := 1; i < len(s.shards); i++ {
		fin, err := s.shards[i].rotate()
		if err != nil {
			return err
		}
		bounds[i] = fin
	}
	fin, err := s.shards[0].rotate()
	if err != nil {
		return err
	}
	bounds[0] = fin
	// Orphan shards (a previous run used more shards): their records
	// were recovered at Open and are part of the state being
	// checkpointed, so the checkpoint covers them entirely.
	for id, maxSeq := range s.orphans {
		bounds[id] = maxSeq
	}
	covered := s.walSince.Load()
	lsnAt := s.lsn.Load()
	seq := s.ckptSeq
	s.ckptSeq++
	full := s.manifest == nil || s.sinceFull >= s.opts.CompactEvery

	fw, err := newSectionFileWriter(s.fs, ckptPath(s.dir, seq))
	if err != nil {
		ioErrCkpt.Inc()
		s.reportFault(err)
		return err
	}
	cw := &CheckpointWriter{st: s, fw: fw, fileSeq: seq, allowKeep: !full}
	if !full {
		cw.prevSecs = make(map[string]int64, len(s.manifest.sections))
		for _, sec := range s.manifest.sections {
			cw.prevSecs[sec.name] = sec.fileSeq
		}
	}
	err = build(cw)
	cw.closeSection()
	if err == nil {
		err = cw.err
	}
	if err != nil {
		// The abort path removes the temp file; the final ckpt-*.sec
		// name never existed, so the prior manifest and its deltas
		// remain the recovery root untouched. cw.err is a chunk-spill
		// I/O failure (e.g. ENOSPC) and counts as a storage fault;
		// build's own errors are the application's.
		fw.abort()
		if cw.err != nil {
			ioErrCkpt.Inc()
			s.reportFault(cw.err)
		}
		return err
	}
	if err := fw.finish(); err != nil {
		ioErrCkpt.Inc()
		s.reportFault(err)
		return err
	}
	m := &manifest{seq: seq, maxLSN: lsnAt, bounds: bounds, sections: cw.sections}
	if err := writeManifestFile(s.fs, s.dir, m); err != nil {
		ioErrCkpt.Inc()
		s.reportFault(err)
		return err
	}
	s.manifest = m
	if len(cw.kept) == 0 {
		s.sinceFull = 0
	} else {
		s.sinceFull++
	}
	s.walSince.Add(-covered)
	s.snapped.Store(false)
	s.orphans = map[int]int64{}
	s.lastCkpt = CheckpointStats{
		Seq: seq, Full: len(cw.kept) == 0,
		Written: cw.written, Kept: cw.kept, Bytes: fw.off,
	}

	// Prune outside any append path: recovery correctness does not
	// depend on it, only disk usage does.
	s.prune()
	ckptTotal.Inc()
	ckptBytes.Add(uint64(fw.off))
	if !startedAt.IsZero() {
		ckptHist.Observe(time.Since(startedAt))
	}
	return nil
}

// prune removes WAL segments, checkpoint files, and manifests the
// current manifest has superseded. Files the scrubber quarantined are
// renamed to <name>.quarantine instead of deleted — the parse loop at
// Open ignores the suffix, so a quarantined file can never rejoin
// recovery, but an operator can still inspect it. Called with ckptMu
// held.
func (s *Store) prune() {
	m := s.manifest
	refs := m.fileRefs()
	entries, err := s.fs.ReadDir(s.dir)
	if err != nil {
		return
	}
	drop := func(name string) {
		path := filepath.Join(s.dir, name)
		s.faultMu.Lock()
		quarantined := s.quarantined[name]
		delete(s.quarantined, name)
		delete(s.sealedTorn, name)
		s.faultMu.Unlock()
		if quarantined {
			if s.fs.Rename(path, path+".quarantine") == nil {
				return
			}
		}
		_ = s.fs.Remove(path)
	}
	for _, e := range entries {
		var seq int64
		var id int
		switch {
		case parseSegName(e.Name(), &id, &seq):
			if bound, ok := m.bounds[id]; ok && seq <= bound {
				drop(e.Name())
			}
		case parseSeqName(e.Name(), "ckpt-", ".sec", &seq):
			if !refs[seq] && seq < m.seq {
				drop(e.Name())
			}
		case parseSeqName(e.Name(), "manifest-", ".mf", &seq):
			if seq < m.seq {
				drop(e.Name())
			}
		}
	}
	_ = s.fs.SyncDir(s.dir)
}

// Close flushes and fsyncs every shard and releases the store. Closing
// a crashed store is a no-op.
func (s *Store) Close() error {
	s.stateMu.Lock()
	if s.dead || s.closed {
		s.stateMu.Unlock()
		return nil
	}
	s.closed = true
	s.stateMu.Unlock()
	// Data shards close (flush + fsync) before the metadata shard, the
	// same causal order Sync enforces.
	var firstErr error
	for i := 1; i < len(s.shards); i++ {
		if err := s.shards[i].close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if err := s.shards[0].close(); err != nil && firstErr == nil {
		firstErr = err
	}
	s.stopOnce.Do(func() { close(s.flushStop) })
	<-s.flushDone
	s.stopScrubber()
	return firstErr
}

// stopScrubber stops the background scrub loop, if one was started.
func (s *Store) stopScrubber() {
	if s.scrubStop == nil {
		return
	}
	select {
	case <-s.scrubStop:
	default:
		close(s.scrubStop)
	}
	<-s.scrubDone
}

// Crash simulates a process crash: user-space buffers are dropped, the
// files are abandoned as-is, and every subsequent operation fails with
// ErrCrashed. What recovery will see is exactly what had reached the OS.
func (s *Store) Crash() {
	s.stateMu.Lock()
	if s.dead || s.closed {
		s.stateMu.Unlock()
		return
	}
	s.dead = true
	s.stateMu.Unlock()
	for _, sh := range s.shards {
		sh.crash()
	}
	s.stopOnce.Do(func() { close(s.flushStop) })
	<-s.flushDone
	s.stopScrubber()
}
