package bench

import (
	"testing"
	"time"
)

// TestParallelRepairSpeedup checks the repair scheduler's scaling claim:
// on a partition-disjoint workload whose cost is dominated by per-run
// application latency, 4 workers repair at least 1.5x faster than the
// serial engine, with identical re-execution accounting.
func TestParallelRepairSpeedup(t *testing.T) {
	const (
		users, notes = 8, 2
		appLatency   = 500 * time.Microsecond
	)
	serial, err := ParallelRepair(users, notes, 1, appLatency)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := ParallelRepair(users, notes, 4, appLatency)
	if err != nil {
		t.Fatal(err)
	}
	if serial.Report.AppRunsReexecuted != parallel.Report.AppRunsReexecuted ||
		serial.Report.QueriesReexecuted != parallel.Report.QueriesReexecuted {
		t.Fatalf("work accounting differs: serial %d/%d, parallel %d/%d",
			serial.Report.AppRunsReexecuted, serial.Report.QueriesReexecuted,
			parallel.Report.AppRunsReexecuted, parallel.Report.QueriesReexecuted)
	}
	if serial.Report.AppRunsReexecuted != users*notes {
		t.Fatalf("runs re-executed = %d, want %d", serial.Report.AppRunsReexecuted, users*notes)
	}
	speedup := float64(serial.RepairTime) / float64(parallel.RepairTime)
	t.Logf("serial %v, 4 workers %v, speedup %.2fx", serial.RepairTime, parallel.RepairTime, speedup)
	if raceEnabled {
		// Race instrumentation serializes the workers' interleavings and
		// swamps the latency being overlapped; the correctness half above
		// still ran, but the wall-time bar only means something uninstrumented.
		t.Skip("skipping speedup assertion under the race detector")
	}
	if speedup < 1.5 {
		t.Fatalf("speedup %.2fx at 4 workers, want >= 1.5x (serial %v, parallel %v)",
			speedup, serial.RepairTime, parallel.RepairTime)
	}
}
