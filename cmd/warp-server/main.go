// Command warp-server runs GoWiki under WARP on a real net/http server,
// so the system can be driven from an actual browser. Administrative
// endpoints expose repair and observability:
//
//	GET  /warp/status                  — storage, conflict queue, exec
//	                                     counters, last checkpoint, and
//	                                     live repair progress (JSON)
//	GET  /warp/metrics                 — Prometheus text exposition of
//	                                     every registered metric
//	GET  /warp/health                  — ok/degraded, the last storage
//	                                     fault, and background scrub
//	                                     progress (JSON; 503 once the
//	                                     deployment degrades to
//	                                     read-only)
//	POST /warp/patch?kind=Stored+XSS   — retroactively apply a Table 2 patch
//	                                     (synchronous; response carries the
//	                                     repair report)
//	POST /warp/repair?kind=Stored+XSS  — the same patch, applied
//	                                     asynchronously: returns 202
//	                                     immediately and the repair runs
//	                                     online while the server keeps
//	                                     serving; progress via /warp/status
//	POST /warp/undo?client=C&visit=N   — undo a past page visit
//
// Repairs run online by default (docs/repair.md "Online repair"): live
// requests keep executing on partitions the repair has not claimed, and
// -repair-slo paces repair workers against a live p99 target.
// -exclusive-repair restores the paper's stop-the-world suspension.
//
// With -debug-addr a second listener serves expvar (/debug/vars) and
// pprof (/debug/pprof/); with -slow-query every statement and repair
// action slower than the threshold is logged with its canonical SQL,
// plan shape, and duration. See docs/observability.md.
//
// With -data the deployment is durable (docs/persistence.md): the
// history graph and time-travel database are WAL-logged and snapshotted
// under the given directory, and restarting the server with the same
// directory recovers them — the audit trail survives deploys and
// crashes. Without -data everything lives in memory, as before.
//
// Real browsers have no WARP extension, so requests are logged with
// server-side identifiers (§7) and browser-level replay degrades to
// conflict reporting, exactly as §2.3 describes for extensionless clients.
package main

import (
	"context"
	"encoding/json"
	"expvar"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strconv"
	"sync"
	"syscall"
	"time"

	"warp"
	"warp/internal/core"
	"warp/internal/httpd"
	"warp/internal/obs"
	"warp/internal/sqldb"
	"warp/internal/webapp/wiki"
)

func main() {
	addr := flag.String("addr", ":8480", "listen address")
	data := flag.String("data", "", "persistence directory; empty runs in memory")
	repairWorkers := flag.Int("repair-workers", 0,
		"parallel repair workers (0 = GOMAXPROCS, 1 = the paper's serial engine)")
	walShards := flag.Int("wal-shards", 1,
		"independent WAL shard chains; table groups spread over shards 1..n-1, metadata stays on shard 0")
	compactEvery := flag.Int("compact-every", 0,
		"full (compacting) checkpoint after this many incremental ones (0 = store default of 8)")
	syncEvery := flag.Bool("sync-every-append", false,
		"fsync every WAL append (leader/follower group commit) instead of the windowed default")
	scrubInterval := flag.Duration("scrub-interval", 0,
		"background storage scrub period re-verifying sealed WAL segments and checkpoint files (0 disables; ignored without -data)")
	debugAddr := flag.String("debug-addr", "",
		"second listen address serving expvar (/debug/vars) and pprof (/debug/pprof/); empty disables")
	slowQuery := flag.Duration("slow-query", 0,
		"log statements and repair actions slower than this threshold (0 disables)")
	repairSLO := flag.Duration("repair-slo", 0,
		"live-request p99 target an online repair throttles its workers against (0 disables the governor)")
	exclusiveRepair := flag.Bool("exclusive-repair", false,
		"suspend normal execution for the whole repair (the paper's stop-the-world behavior) instead of repairing online")
	flag.Parse()

	// A server deployment always runs instrumented: the histograms are
	// zero-alloc atomic adds, and /warp/metrics needs them populated.
	obs.SetEnabled(true)
	if *slowQuery > 0 {
		sqldb.SetSlowQueryLog(*slowQuery, func(stmt string, shape sqldb.ExecShape, d time.Duration) {
			log.Printf("slow query shape=%s dur=%s sql=%s", shape, d, stmt)
		})
		core.SetSlowRepairLog(*slowQuery, func(item string, d time.Duration) {
			log.Printf("slow repair action dur=%s item=%s", d, item)
		})
	}

	cfg := warp.Config{
		Seed: 2026, RepairWorkers: *repairWorkers,
		RepairSLO: *repairSLO, ExclusiveRepair: *exclusiveRepair,
	}
	cfg.Durability.Shards = *walShards
	cfg.Durability.CompactEvery = *compactEvery
	cfg.Durability.SyncEveryAppend = *syncEvery
	cfg.Durability.ScrubInterval = *scrubInterval
	var sys *warp.System
	var err error
	if *data != "" {
		sys, err = warp.Open(*data, cfg)
		if err != nil {
			log.Fatal(err)
		}
		st := sys.Recovery()
		log.Printf("persistent store %s: checkpoint=%v walRecords=%d tailCorrupt=%v shards=%d",
			*data, st.FromSnapshot, st.WALRecords, st.TailCorrupt, *walShards)
	} else {
		sys = warp.New(cfg)
	}
	app, err := wiki.Install(sys.Warp)
	if err != nil {
		log.Fatal(err)
	}
	if it := sys.PendingRepair(); it != nil {
		// A repair was in flight when the previous instance died. Undo
		// intents are self-contained; patch intents need the patched
		// code, which Install just re-registered at its base version, so
		// the administrator re-applies via /warp/patch.
		if it.Kind == warp.RepairIntentUndoVisit || it.Kind == warp.RepairIntentUndoPartition {
			rep, err := sys.ResumeRepair(nil)
			if err != nil {
				log.Printf("resuming crashed repair: %v", err)
			} else {
				log.Printf("resumed crashed repair: %s", rep.String())
			}
		} else {
			log.Printf("crashed retroactive patch of %s pending; re-apply via /warp/patch", it.File)
		}
	}
	// Seed accounts and pages (the pre-horizon base state). Seeding is
	// per-item idempotent — an entity that already exists (recovered
	// state, or a crash partway through a previous seeding) is skipped —
	// so a partially-seeded store completes on the next start.
	seeded := func(err error) error {
		if sqldb.IsUniqueViolation(err) {
			return nil
		}
		return err
	}
	for _, u := range []struct {
		name  string
		admin bool
	}{{"admin", true}, {"alice", false}, {"bob", false}} {
		if err := seeded(app.CreateUser(u.name, "pw-"+u.name, u.admin)); err != nil {
			log.Fatal(err)
		}
	}
	for _, p := range []string{"Main", "Sandbox", "TeamPage"} {
		if err := seeded(app.CreatePage(p, "welcome to "+p, false)); err != nil {
			log.Fatal(err)
		}
	}

	// asyncRepair tracks the one repair POST /warp/repair may have in
	// flight; /warp/status reports its progress.
	var asyncRepair struct {
		sync.Mutex
		running    bool
		kind       string
		started    time.Time
		lastKind   string
		lastResult string
		lastError  string
	}

	mux := http.NewServeMux()
	mux.Handle("/", &httpd.Adapter{Handler: sys.HandleRequest})
	mux.HandleFunc("/warp/status", func(w http.ResponseWriter, r *http.Request) {
		st := sys.Storage()
		type repairStatus struct {
			InRepair   bool                `json:"in_repair"`
			Kind       string              `json:"kind,omitempty"`
			ElapsedMS  int64               `json:"elapsed_ms,omitempty"`
			LastKind   string              `json:"last_kind,omitempty"`
			LastResult string              `json:"last_result,omitempty"`
			LastError  string              `json:"last_error,omitempty"`
			Trace      *warp.TraceSnapshot `json:"trace,omitempty"`
		}
		rst := repairStatus{InRepair: sys.DB.InRepair()}
		asyncRepair.Lock()
		if asyncRepair.running {
			rst.Kind = asyncRepair.kind
			rst.ElapsedMS = time.Since(asyncRepair.started).Milliseconds()
		}
		rst.LastKind = asyncRepair.lastKind
		rst.LastResult = asyncRepair.lastResult
		rst.LastError = asyncRepair.lastError
		asyncRepair.Unlock()
		if rst.InRepair {
			// The phase trace reflects live progress (frontier / replay /
			// rollback / commit spans) while the session runs.
			rst.Trace = sys.Metrics().Repair
		}
		status := struct {
			PageVisits      int                  `json:"page_visits"`
			BrowserLogBytes int                  `json:"browser_log_bytes"`
			AppLogBytes     int                  `json:"app_log_bytes"`
			DBLogBytes      int                  `json:"db_log_bytes"`
			DBRowBytes      int                  `json:"db_row_bytes"`
			ConflictsQueued int                  `json:"conflicts_queued"`
			ExecStats       warp.ExecStats       `json:"exec_stats"`
			LastCheckpoint  warp.CheckpointStats `json:"last_checkpoint"`
			Repair          repairStatus         `json:"repair"`
		}{
			PageVisits:      st.PageVisits,
			BrowserLogBytes: st.BrowserLogBytes,
			AppLogBytes:     st.AppLogBytes,
			DBLogBytes:      st.DBLogBytes,
			DBRowBytes:      st.DBRowBytes,
			ConflictsQueued: len(sys.Conflicts()),
			ExecStats:       sys.ExecStats(),
			LastCheckpoint:  sys.LastCheckpoint(),
			Repair:          rst,
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(status); err != nil {
			log.Printf("encoding /warp/status: %v", err)
		}
	})
	mux.Handle("/warp/metrics", obs.Handler())
	mux.HandleFunc("/warp/health", func(w http.ResponseWriter, r *http.Request) {
		h := sys.Health()
		status := "ok"
		code := http.StatusOK
		if h.Degraded {
			// Degraded deployments still serve reads, but a load balancer
			// health check should see them as unhealthy for writes.
			status = "degraded"
			code = http.StatusServiceUnavailable
		}
		body := struct {
			Status           string           `json:"status"`
			DegradedCause    string           `json:"degraded_cause,omitempty"`
			DegradedSince    *time.Time       `json:"degraded_since,omitempty"`
			LastStorageFault string           `json:"last_storage_fault,omitempty"`
			Scrub            *warp.ScrubStats `json:"scrub,omitempty"`
		}{Status: status, DegradedCause: h.DegradedCause, LastStorageFault: h.LastStorageFault}
		if h.Degraded {
			body.DegradedSince = &h.DegradedSince
		}
		if h.Scrub.Passes > 0 || len(h.Scrub.Quarantined) > 0 {
			body.Scrub = &h.Scrub
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(code)
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(body); err != nil {
			log.Printf("encoding /warp/health: %v", err)
		}
	})
	mux.HandleFunc("/warp/patch", func(w http.ResponseWriter, r *http.Request) {
		kind := r.URL.Query().Get("kind")
		v, ok := app.VulnerabilityByKind(kind)
		if !ok || v.File == "" {
			http.Error(w, "unknown vulnerability kind", http.StatusBadRequest)
			return
		}
		rep, err := sys.RetroPatch(v.File, v.Patch)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		fmt.Fprintln(w, "retroactive patch applied:", rep.String())
	})
	mux.HandleFunc("/warp/repair", func(w http.ResponseWriter, r *http.Request) {
		kind := r.URL.Query().Get("kind")
		v, ok := app.VulnerabilityByKind(kind)
		if !ok || v.File == "" {
			http.Error(w, "unknown vulnerability kind", http.StatusBadRequest)
			return
		}
		asyncRepair.Lock()
		if asyncRepair.running {
			asyncRepair.Unlock()
			http.Error(w, "a repair is already running; watch /warp/status", http.StatusConflict)
			return
		}
		asyncRepair.running = true
		asyncRepair.kind = kind
		asyncRepair.started = time.Now()
		asyncRepair.Unlock()
		go func() {
			rep, err := sys.RetroPatch(v.File, v.Patch)
			asyncRepair.Lock()
			asyncRepair.running = false
			asyncRepair.lastKind = kind
			if err != nil {
				asyncRepair.lastError = err.Error()
				asyncRepair.lastResult = ""
				log.Printf("async repair %q failed: %v", kind, err)
			} else {
				asyncRepair.lastError = ""
				asyncRepair.lastResult = rep.String()
				log.Printf("async repair %q done: %s", kind, rep.String())
			}
			asyncRepair.Unlock()
		}()
		w.WriteHeader(http.StatusAccepted)
		fmt.Fprintln(w, "repair started; watch /warp/status for progress")
	})
	mux.HandleFunc("/warp/undo", func(w http.ResponseWriter, r *http.Request) {
		client := r.URL.Query().Get("client")
		visit, _ := strconv.ParseInt(r.URL.Query().Get("visit"), 10, 64)
		rep, err := sys.UndoVisit(client, visit, true)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		fmt.Fprintln(w, "visit undone:", rep.String())
	})

	if *debugAddr != "" {
		dmux := http.NewServeMux()
		dmux.Handle("/debug/vars", expvar.Handler())
		dmux.HandleFunc("/debug/pprof/", pprof.Index)
		dmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		dmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		dmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		dmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func() {
			log.Printf("debug endpoints (expvar, pprof) on %s", *debugAddr)
			if err := http.ListenAndServe(*debugAddr, dmux); err != nil {
				log.Printf("debug listener: %v", err)
			}
		}()
	}

	// On shutdown, stop accepting requests before closing the store:
	// a request served after Close would be acknowledged but never
	// persisted. The final Close checkpoints, so the next start
	// recovers from the snapshot instead of replaying the whole WAL.
	srv := &http.Server{Addr: *addr, Handler: mux}
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	done := make(chan struct{})
	go func() {
		defer close(done)
		<-sigs
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			log.Printf("draining connections: %v", err)
		}
		if err := sys.Close(); err != nil {
			log.Printf("closing store: %v", err)
		}
	}()

	log.Printf("GoWiki under WARP listening on %s (users: admin, alice, bob; passwords pw-<name>)", *addr)
	if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		log.Fatal(err)
	}
	<-done // the drain goroutine checkpoints and closes the store
}
