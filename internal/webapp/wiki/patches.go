package wiki

import (
	"strings"

	"warp/internal/app"
	"warp/internal/dom"
	"warp/internal/httpd"
	"warp/internal/sqldb"
)

// Vulnerability describes one Table 2 entry: the CVE, the vulnerable
// source file, and the patch that fixes it (the input to retroactive
// patching). The ACL-error scenario has no patch — it is repaired by
// undoing the administrator's page visit.
type Vulnerability struct {
	CVE         string
	Kind        string
	File        string
	Description string
	Fix         string
	Patch       app.Version
}

// Vulnerabilities returns the paper's Table 2 for GoWiki.
func (a *App) Vulnerabilities() []Vulnerability {
	return []Vulnerability{
		{
			CVE:  "CVE-2009-0737",
			Kind: "Reflected XSS",
			File: "config/index.php",
			Description: "the user options (wgDB*) in the live web-based installer " +
				"are not HTML-escaped",
			Fix:   "sanitize all user options with htmlspecialchars() (r46889)",
			Patch: app.Version{Entry: a.installerV2, Note: "CVE-2009-0737: escape installer options"},
		},
		{
			CVE:         "CVE-2009-4589",
			Kind:        "Stored XSS",
			File:        "block.php",
			Description: "the name of the contribution link (Special:Block?ip) is not HTML-escaped",
			Fix:         "sanitize the ip parameter with htmlspecialchars() (r52521)",
			Patch:       app.Version{Entry: a.blockV2, Note: "CVE-2009-4589: escape ip parameter"},
		},
		{
			CVE:         "CVE-2010-1150",
			Kind:        "CSRF",
			File:        "login.php",
			Description: "HTML/API login interfaces do not properly handle an unintended login attempt",
			Fix:         "include a random challenge token in a hidden form field for every login attempt (r64677)",
			Patch:       app.Version{Entry: a.loginV2, Note: "CVE-2010-1150: login challenge token"},
		},
		{
			CVE:         "CVE-2011-0003",
			Kind:        "Clickjacking",
			File:        "common.php",
			Description: "a malicious website can embed the wiki within an iframe",
			Fix:         "add X-Frame-Options: DENY to HTTP headers (r79566)",
			Patch:       app.Version{Lib: a.commonV2(), Note: "CVE-2011-0003: X-Frame-Options DENY"},
		},
		{
			CVE:         "CVE-2004-2186",
			Kind:        "SQL injection",
			File:        "maintenance.php",
			Description: "the language identifier thelang is not properly sanitized",
			Fix:         "sanitize the thelang parameter with wfStrencode()",
			Patch:       app.Version{Entry: a.maintenanceV2, Note: "CVE-2004-2186: escape thelang"},
		},
		{
			CVE:         "—",
			Kind:        "ACL error",
			File:        "",
			Description: "administrator accidentally grants page access to the wrong user",
			Fix:         "revoke by undoing the administrator's page visit",
		},
	}
}

// VulnerabilityByKind finds a Table 2 entry.
func (a *App) VulnerabilityByKind(kind string) (Vulnerability, bool) {
	for _, v := range a.Vulnerabilities() {
		if v.Kind == kind {
			return v, true
		}
	}
	return Vulnerability{}, false
}

// installerV2 escapes the echoed installer options (fix r46889).
func (a *App) installerV2(c *app.Ctx) *httpd.Response {
	lib := a.common(c)
	var b strings.Builder
	b.WriteString("<h1>Installer</h1><p>Checking settings:</p><ul>")
	for _, opt := range []string{"wgDBserver", "wgDBname", "wgDBuser"} {
		v := lib.Sanitize(c.Req.Param(opt)) // patched
		b.WriteString("<li>" + opt + " = " + v + "</li>")
	}
	b.WriteString("</ul>")
	return lib.Decorate(httpd.HTML(lib.Layout("Installer", b.String())))
}

// blockV2 sanitizes the ip parameter before storing it (fix r52521).
func (a *App) blockV2(c *app.Ctx) *httpd.Response {
	lib := a.common(c)
	ip := c.Req.Param("ip")
	if ip == "" {
		return lib.Decorate(httpd.HTML(lib.Layout("Block", `<p>missing ip</p>`)))
	}
	note := "blocked: " + lib.Sanitize(ip) // patched
	if _, err := c.Query("INSERT INTO blocklog (note) VALUES (?)", sqldb.Text(note)); err != nil {
		return lib.Decorate(httpd.ServerError(err.Error()))
	}
	return lib.Decorate(httpd.HTML(lib.Layout("Block", `<p>recorded</p>`)))
}

// loginV2 is the patched login (fix r64677): the form carries a random
// challenge token stored server-side, the POST path requires it, and a
// successful login establishes a fresh session ID (regeneration), which is
// why CSRF repair re-executes broadly (Table 7).
func (a *App) loginV2(c *app.Ctx) *httpd.Response {
	lib := a.common(c)
	if c.Req.Method == "GET" {
		token := c.Token("login.challenge")
		if _, err := c.Query("INSERT INTO tokens (token) VALUES (?)", sqldb.Text(token)); err != nil {
			return lib.Decorate(httpd.ServerError(err.Error()))
		}
		hidden := `<input type="hidden" name="wpLoginToken" value="` + dom.EscapeAttr(token) + `"/>`
		return lib.Decorate(httpd.HTML(lib.Layout("Log in", loginFormHTML(hidden))))
	}
	token := c.Req.Form.Get("wpLoginToken")
	ok := false
	if token != "" {
		res, err := c.Query("SELECT COUNT(*) FROM tokens WHERE token = ?", sqldb.Text(token))
		if err != nil {
			return lib.Decorate(httpd.ServerError(err.Error()))
		}
		ok = res.FirstValue().AsInt() > 0
	}
	if !ok {
		resp := httpd.HTML(lib.Layout("Log in", loginFormHTML("")+`<p id="err">login attempt rejected: missing or invalid token</p>`))
		resp.Status = 403
		return lib.Decorate(resp)
	}
	if _, err := c.Query("DELETE FROM tokens WHERE token = ?", sqldb.Text(token)); err != nil {
		return lib.Decorate(httpd.ServerError(err.Error()))
	}
	return a.doLogin(c, lib, "login.sid.regenerated")
}

// commonV2 is the patched common library: every response carries
// X-Frame-Options: DENY (fix r79566).
func (a *App) commonV2() Common {
	return Common{
		Layout: layout,
		Decorate: func(r *httpd.Response) *httpd.Response {
			r.Headers["X-Frame-Options"] = "DENY"
			return r
		},
		Sanitize: dom.Escape,
	}
}

// maintenanceV2 escapes thelang (the wfStrencode fix).
func (a *App) maintenanceV2(c *app.Ctx) *httpd.Response {
	lib := a.common(c)
	thelang := c.Req.Param("thelang")
	if thelang == "" {
		return lib.Decorate(httpd.HTML(lib.Layout("Maintenance", "<p>no-op</p>")))
	}
	if _, err := c.Query("UPDATE pages SET lang = ?", sqldb.Text(thelang)); err != nil {
		return lib.Decorate(httpd.HTML(lib.Layout("Maintenance", "<p>error</p>")))
	}
	return lib.Decorate(httpd.HTML(lib.Layout("Maintenance", "<p>language updated</p>")))
}
