package ttdb

import (
	"warp/internal/sqldb"
)

// Plan introspection through the rewriting layer. ttdb.Explain describes
// the raw-engine access plan a statement actually executes with under
// normal operation — after the liveWhere augmentation — so an operator
// can see whether an application predicate still rides an index once
// the four version-interval conjuncts are attached.

// Explain describes the augmented access plan of one application
// statement. An UPDATE renders both executed phases (the capture select
// and the in-place update) separated by "; "; a DELETE renders as the
// interval-closing UPDATE it executes as.
func (db *DB) Explain(src string) (string, error) {
	cs, err := db.stmts.Get(src)
	if err != nil {
		return "", err
	}
	switch s := cs.Stmt.(type) {
	case *sqldb.Select:
		if s.Table == "" {
			return db.raw.ExplainCached(cs)
		}
		m, err := db.meta(s.Table)
		if err != nil {
			return "", err
		}
		return db.raw.ExplainCached(db.augSelectFor(m, s, cs).handle)
	case *sqldb.Update:
		m, err := db.meta(s.Table)
		if err != nil {
			return "", err
		}
		a := db.augUpdateFor(m, s, cs)
		sel, err := db.raw.ExplainCached(a.sel)
		if err != nil {
			return "", err
		}
		upd, err := db.raw.ExplainCached(a.upd)
		if err != nil {
			return "", err
		}
		return sel + "; " + upd, nil
	case *sqldb.Delete:
		m, err := db.meta(s.Table)
		if err != nil {
			return "", err
		}
		return db.raw.ExplainCached(db.augDeleteFor(m, s, cs).upd)
	default:
		return db.raw.ExplainCached(cs)
	}
}

// ExecStats merges the deployment-wide statement cache's counters with
// the raw engine's plan and scan counters. The rewriting layer never
// round-trips SQL text through the engine's own cache, so the statement
// counters reported here are effectively the deployment cache's.
func (db *DB) ExecStats() sqldb.ExecStats {
	st := db.raw.ExecStats()
	h, m := db.stmts.Stats()
	st.StmtCacheHits += h
	st.StmtCacheMisses += m
	return st
}
