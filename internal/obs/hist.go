package obs

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// NumBuckets is the fixed bucket count of every latency histogram.
//
// Buckets are log2-spaced over nanoseconds: bucket i holds observations
// whose nanosecond value has bit length i — bucket 0 is exactly 0ns,
// bucket i (i ≥ 1) covers [2^(i-1), 2^i). Fixed log-spaced buckets make
// Observe a single shift-free index computation (bits.Len64), keep
// snapshots mergeable by plain addition, and bound quantile error to
// one bucket (a factor of 2) at any scale from nanoseconds to minutes.
const NumBuckets = 64

// bucketOf returns the bucket index for a nanosecond value.
func bucketOf(ns int64) int {
	if ns <= 0 {
		return 0
	}
	return bits.Len64(uint64(ns)) // ≤ 63 for any int64
}

// BucketUpper returns bucket i's inclusive upper bound in nanoseconds
// (0 for bucket 0, 2^i − 1 otherwise).
func BucketUpper(i int) int64 {
	if i <= 0 {
		return 0
	}
	if i >= 63 {
		return int64(^uint64(0) >> 1)
	}
	return int64(uint64(1)<<uint(i)) - 1
}

// bucketLower returns bucket i's inclusive lower bound in nanoseconds.
func bucketLower(i int) int64 {
	if i <= 0 {
		return 0
	}
	return int64(uint64(1) << uint(i-1))
}

// Histogram is a fixed-bucket latency histogram safe for concurrent
// writers. Observe is three atomic adds — no locks, no allocation — so
// it can sit on the exec hot path. The zero value is usable.
type Histogram struct {
	name    string
	count   atomic.Uint64
	sum     atomic.Uint64 // total nanoseconds
	buckets [NumBuckets]atomic.Uint64
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	ns := int64(d)
	if ns < 0 {
		ns = 0
	}
	h.buckets[bucketOf(ns)].Add(1)
	h.sum.Add(uint64(ns))
	h.count.Add(1)
}

// Name returns the histogram's registered name.
func (h *Histogram) Name() string { return h.name }

// Snapshot returns a point-in-time copy of the histogram. Concurrent
// Observe calls may land between field reads; the snapshot is
// internally consistent to within those in-flight observations (Count
// can trail the bucket total by the writers mid-Observe).
func (h *Histogram) Snapshot() HistSnapshot {
	var s HistSnapshot
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
		s.Count += s.Buckets[i]
	}
	s.Sum = h.sum.Load()
	return s
}

// HistSnapshot is an immutable copy of a histogram's state. Snapshots
// merge (across workers, shards, or time slices) by plain addition and
// subtract to bracket a measurement window.
type HistSnapshot struct {
	Count   uint64
	Sum     uint64 // nanoseconds
	Buckets [NumBuckets]uint64
}

// Merge folds another snapshot into s.
func (s *HistSnapshot) Merge(o HistSnapshot) {
	s.Count += o.Count
	s.Sum += o.Sum
	for i := range s.Buckets {
		s.Buckets[i] += o.Buckets[i]
	}
}

// Sub returns the per-bucket difference s − prev, for measurements over
// a window bracketed by two snapshots of the same histogram.
func (s HistSnapshot) Sub(prev HistSnapshot) HistSnapshot {
	out := s
	out.Count -= prev.Count
	out.Sum -= prev.Sum
	for i := range out.Buckets {
		out.Buckets[i] -= prev.Buckets[i]
	}
	return out
}

// Mean returns the arithmetic mean of the observed durations.
func (s HistSnapshot) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return time.Duration(s.Sum / s.Count)
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of the observed
// durations, linearly interpolated within the containing bucket. The
// result is exact to bucket resolution: it falls within the same
// power-of-two bucket as the true order statistic, i.e. within a factor
// of 2.
func (s HistSnapshot) Quantile(q float64) time.Duration {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	// rank is the 1-based index of the order statistic we want.
	rank := uint64(q*float64(s.Count-1)) + 1
	var cum uint64
	for i, n := range s.Buckets {
		if n == 0 {
			continue
		}
		if cum+n >= rank {
			lo, hi := bucketLower(i), BucketUpper(i)
			// Position of the target rank within this bucket, in (0, 1].
			f := float64(rank-cum) / float64(n)
			return time.Duration(lo) + time.Duration(f*float64(hi-lo))
		}
		cum += n
	}
	// Unreachable when Count equals the bucket total; be safe under
	// racing writers.
	return s.Max()
}

// Max returns the upper bound of the highest non-empty bucket: an upper
// estimate of the largest observation, exact to bucket resolution.
func (s HistSnapshot) Max() time.Duration {
	for i := NumBuckets - 1; i >= 0; i-- {
		if s.Buckets[i] != 0 {
			return time.Duration(BucketUpper(i))
		}
	}
	return 0
}
