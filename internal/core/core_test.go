package core

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"warp/internal/app"
	"warp/internal/httpd"
	"warp/internal/sqldb"
	"warp/internal/ttdb"
)

// newNotesApp builds a minimal one-file application for core-level tests.
func newNotesApp(t *testing.T) *Warp {
	t.Helper()
	w := New(Config{Seed: 5})
	if err := w.DB.Annotate("notes", ttdb.TableSpec{RowIDColumn: "id", PartitionColumns: []string{"owner"}}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := w.DB.Exec("CREATE TABLE notes (id INTEGER PRIMARY KEY, owner TEXT, body TEXT)"); err != nil {
		t.Fatal(err)
	}
	handler := func(c *app.Ctx) *httpd.Response {
		if body := c.Req.Param("body"); body != "" {
			id := c.MustQuery("SELECT COALESCE(MAX(id), 0) + 1 FROM notes").FirstValue()
			c.MustQuery("INSERT INTO notes (id, owner, body) VALUES (?, ?, ?)",
				id, sqldb.Text(c.Req.Param("owner")), sqldb.Text(body))
		}
		res := c.MustQuery("SELECT body FROM notes WHERE owner = ?", sqldb.Text(c.Req.Param("owner")))
		var b strings.Builder
		b.WriteString("<html><body><ul>")
		for _, row := range res.Rows {
			b.WriteString("<li>" + row[0].AsText() + "</li>")
		}
		b.WriteString("</ul></body></html>")
		return httpd.HTML(b.String())
	}
	if err := w.Runtime.Register("notes.php", app.Version{Entry: handler}); err != nil {
		t.Fatal(err)
	}
	w.Runtime.Mount("/", "notes.php")
	return w
}

func TestHandleRequestRecordsActions(t *testing.T) {
	w := newNotesApp(t)
	b := w.NewBrowser()
	p := b.Open("/?owner=alice&body=hello")
	if p.DOM == nil || !strings.Contains(p.DOM.InnerText(), "hello") {
		t.Fatalf("response: %v", p.DOM)
	}
	if w.Graph.Len() == 0 {
		t.Fatal("nothing recorded")
	}
	st := w.Storage()
	if st.PageVisits != 1 || st.AppLogBytes == 0 || st.DBLogBytes == 0 || st.BrowserLogBytes == 0 {
		t.Fatalf("storage accounting: %+v", st)
	}
}

func TestRouteMiss(t *testing.T) {
	w := newNotesApp(t)
	resp := w.HandleRequest(httpd.NewRequest("GET", "/nosuch"))
	if resp.Status != 404 {
		t.Fatalf("status = %d", resp.Status)
	}
}

func TestClientLogQuota(t *testing.T) {
	w := New(Config{Seed: 6, ClientLogQuota: 3})
	if err := w.Runtime.Register("f.php", app.Version{Entry: func(c *app.Ctx) *httpd.Response {
		return httpd.HTML("<html><body>x</body></html>")
	}}); err != nil {
		t.Fatal(err)
	}
	w.Runtime.Mount("/", "f.php")
	b := w.NewBrowser()
	for i := 0; i < 10; i++ {
		b.Open(fmt.Sprintf("/?n=%d", i))
	}
	w.mu.Lock()
	kept := len(w.visitLogs[b.ClientID])
	w.mu.Unlock()
	if kept != 3 {
		t.Fatalf("quota kept %d logs, want 3", kept)
	}
}

func TestConcurrentRequestsAreSafe(t *testing.T) {
	w := newNotesApp(t)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			b := w.NewBrowser()
			for i := 0; i < 20; i++ {
				b.Open(fmt.Sprintf("/?owner=u%d&body=note%d", g, i))
			}
		}(g)
	}
	wg.Wait()
	res, _, err := w.DB.Exec("SELECT COUNT(*) FROM notes")
	if err != nil {
		t.Fatal(err)
	}
	if res.FirstValue().AsInt() == 0 {
		t.Fatal("no notes written")
	}
}

func TestRetroPatchOnCoreApp(t *testing.T) {
	w := newNotesApp(t)
	b := w.NewBrowser()
	b.Open("/?owner=alice&body=<script>bad</script>")
	b.Open("/?owner=alice&body=fine")

	fixed := func(c *app.Ctx) *httpd.Response {
		if body := c.Req.Param("body"); body != "" {
			clean := strings.ReplaceAll(strings.ReplaceAll(body, "<", "&lt;"), ">", "&gt;")
			id := c.MustQuery("SELECT COALESCE(MAX(id), 0) + 1 FROM notes").FirstValue()
			c.MustQuery("INSERT INTO notes (id, owner, body) VALUES (?, ?, ?)",
				id, sqldb.Text(c.Req.Param("owner")), sqldb.Text(clean))
		}
		res := c.MustQuery("SELECT body FROM notes WHERE owner = ?", sqldb.Text(c.Req.Param("owner")))
		var sb strings.Builder
		sb.WriteString("<html><body><ul>")
		for _, row := range res.Rows {
			sb.WriteString("<li>" + row[0].AsText() + "</li>")
		}
		sb.WriteString("</ul></body></html>")
		return httpd.HTML(sb.String())
	}
	rep, err := w.RetroPatch("notes.php", app.Version{Entry: fixed, Note: "sanitize"})
	if err != nil {
		t.Fatal(err)
	}
	res, _, _ := w.DB.Exec("SELECT body FROM notes ORDER BY id")
	if res.NumRows() != 2 {
		t.Fatalf("rows = %d", res.NumRows())
	}
	if strings.Contains(res.Rows[0][0].AsText(), "<script>") {
		t.Fatalf("unsanitized row survived: %q", res.Rows[0][0].AsText())
	}
	if res.Rows[1][0].AsText() != "fine" {
		t.Fatalf("legitimate row damaged: %q", res.Rows[1][0].AsText())
	}
	if rep.Generation != 2 {
		t.Fatalf("generation = %d", rep.Generation)
	}
	// A second repair works on the repaired state.
	rep2, err := w.RetroPatch("notes.php", app.Version{Entry: fixed, Note: "no-op patch"})
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Generation != 3 {
		t.Fatalf("second generation = %d", rep2.Generation)
	}
}

func TestGCSynchronizesGraphAndDB(t *testing.T) {
	w := newNotesApp(t)
	b := w.NewBrowser()
	for i := 0; i < 5; i++ {
		b.Open(fmt.Sprintf("/?owner=alice&body=n%d", i))
	}
	before := w.Graph.Len()
	horizon := w.Clock.Now() + 1
	if err := w.GC(horizon); err != nil {
		t.Fatal(err)
	}
	if w.Graph.Len() >= before {
		t.Fatalf("graph not collected: %d -> %d", before, w.Graph.Len())
	}
	// Live data survives.
	res, _, _ := w.DB.Exec("SELECT COUNT(*) FROM notes")
	if res.FirstValue().AsInt() != 5 {
		t.Fatalf("GC damaged live rows: %v", res.FirstValue())
	}
	// Repair beyond the horizon is now impossible; RetroPatch finds no
	// runs (all collected) and succeeds as a no-op.
	rep, err := w.RetroPatch("notes.php", app.Version{Entry: func(c *app.Ctx) *httpd.Response {
		return httpd.HTML("<html><body>v2</body></html>")
	}})
	if err != nil {
		t.Fatal(err)
	}
	if rep.AppRunsReexecuted != 0 {
		t.Fatalf("collected runs re-executed: %d", rep.AppRunsReexecuted)
	}
}

func TestSuspendBlocksRequests(t *testing.T) {
	w := newNotesApp(t)
	w.Suspend()
	done := make(chan *httpd.Response, 1)
	go func() {
		done <- w.HandleRequest(httpd.NewRequest("GET", "/?owner=x"))
	}()
	select {
	case <-done:
		t.Fatal("request served while suspended")
	default:
	}
	w.Resume()
	resp := <-done
	if resp.Status != 200 {
		t.Fatalf("post-resume status = %d", resp.Status)
	}
}

func TestUndoVisitUnknown(t *testing.T) {
	w := newNotesApp(t)
	if _, err := w.UndoVisit("nosuch", 1, true); err == nil {
		t.Fatal("undo of unknown visit must fail")
	}
	// A failed repair leaves the database out of repair mode.
	if w.DB.InRepair() {
		t.Fatal("repair state leaked")
	}
}
