package core

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"warp/internal/app"
	"warp/internal/browser"
	"warp/internal/history"
	"warp/internal/httpd"
	"warp/internal/sqldb"
	"warp/internal/store"
	"warp/internal/ttdb"
)

// The crash-recovery suite. The test application is a deterministic,
// nondeterminism-free guestbook (no tokens, no clock reads), so a
// recovered-and-repaired deployment must match a never-crashed control
// bit for bit — including version timestamps — which dumpWarp asserts.

func guestbookHandler(sanitize bool) app.Script {
	return func(c *app.Ctx) *httpd.Response {
		if msg := c.Req.Param("msg"); msg != "" {
			if sanitize {
				msg = strings.NewReplacer("<", "&lt;", ">", "&gt;").Replace(msg)
			}
			id := c.MustQuery("SELECT COALESCE(MAX(id), 0) + 1 FROM entries").FirstValue()
			c.MustQuery("INSERT INTO entries (id, author, msg) VALUES (?, ?, ?)",
				id, sqldb.Text(c.Req.Param("author")), sqldb.Text(msg))
		}
		res := c.MustQuery("SELECT author, msg FROM entries ORDER BY id")
		var b strings.Builder
		b.WriteString("<html><body><ul>")
		for _, row := range res.Rows {
			fmt.Fprintf(&b, "<li>%s: %s</li>", row[0].AsText(), row[1].AsText())
		}
		b.WriteString("</ul></body></html>")
		return &httpd.Response{Status: 200, Body: b.String(),
			Headers:    map[string]string{"Content-Type": "text/html"},
			SetCookies: map[string]string{}}
	}
}

// installGuestbook registers the application against a deployment. On a
// recovered deployment the schema already exists, so DDL is skipped and
// the logical clock stays aligned with a never-restarted run.
func installGuestbook(t *testing.T, w *Warp, sanitize bool) {
	t.Helper()
	if err := w.DB.Annotate("entries", ttdb.TableSpec{RowIDColumn: "id", PartitionColumns: []string{"author"}}); err != nil {
		t.Fatal(err)
	}
	hasTable := false
	for _, name := range w.DB.Tables() {
		if name == "entries" {
			hasTable = true
		}
	}
	if !hasTable {
		if _, _, err := w.DB.Exec("CREATE TABLE entries (id INTEGER PRIMARY KEY, author TEXT, msg TEXT)"); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Runtime.Register("guestbook.php", app.Version{Entry: guestbookHandler(false), Note: "vulnerable"}); err != nil {
		t.Fatal(err)
	}
	w.Runtime.Mount("/", "guestbook.php")
	_ = sanitize
}

// workloadSteps drives a deterministic multi-browser workload; step i
// depends only on the deployment's seed and the steps before it.
func workloadSteps(browsers []*browser.Browser) []func() {
	var steps []func()
	open := func(b *browser.Browser, url string) func() {
		return func() { b.Open(url) }
	}
	steps = append(steps,
		open(browsers[0], "/?author=alice&msg=hello+world"),
		open(browsers[1], "/?author=mallory&msg=%3Cscript%3Ewarpjs%3A%20get%20%2Fsteal%3C%2Fscript%3E"),
		open(browsers[2], "/?author=bob&msg=second+post"),
		open(browsers[0], "/"),
		open(browsers[2], "/?author=bob&msg=third+post"),
		open(browsers[1], "/"),
		open(browsers[0], "/?author=alice&msg=closing+note"),
		open(browsers[2], "/"),
	)
	return steps
}

// testDurability is the crash suite's store configuration: fsynced
// appends so every step is durable, plus a sharded WAL so the suite
// exercises merged multi-shard recovery, not just the single-chain case.
func testDurability() store.Options {
	return store.Options{SyncEveryAppend: true, Shards: 2}
}

func buildWarp(t *testing.T, dir string, seed int64) *Warp {
	t.Helper()
	return buildWarpDur(t, dir, seed, testDurability())
}

func buildWarpDur(t *testing.T, dir string, seed int64, dur store.Options) *Warp {
	t.Helper()
	cfg := Config{Seed: seed, RepairWorkers: 1, Durability: dur}
	var w *Warp
	var err error
	if dir == "" {
		w = New(cfg)
	} else {
		w, err = Open(dir, cfg)
		if err != nil {
			t.Fatalf("Open(%s): %v", dir, err)
		}
	}
	installGuestbook(t, w, false)
	return w
}

// dumpWarp renders the complete observable state of a deployment
// deterministically: every history action with payload summary, every
// physical row version of every table, the clock, and the visit logs.
func dumpWarp(t *testing.T, w *Warp) string {
	t.Helper()
	var b strings.Builder
	fmt.Fprintf(&b, "clock=%d gen=%d\n", w.Clock.Now(), w.DB.CurrentGen())

	for _, a := range w.Graph.All() {
		fmt.Fprintf(&b, "action %d kind=%s t=%d in=%v out=%v", a.ID, a.Kind, a.Time, a.Inputs, a.Outputs)
		switch p := a.Payload.(type) {
		case *RunPayload:
			fmt.Fprintf(&b, " run id=%d file=%s req=%x resp=%x queries=%d qacts=%v files=%v sup=%v rep=%v",
				p.Rec.RunID, p.Rec.File, p.Rec.Req.Fingerprint(), p.Rec.Resp.Fingerprint(),
				len(p.Rec.Queries), p.QueryActions, sortedVersions(p.FileVersions),
				p.Superseded.Load(), p.Repaired)
			for _, q := range p.Rec.Queries {
				fmt.Fprintf(&b, "\n  q t=%d out=%x sql=%s wrote=%v", q.Time, q.Outcome(), q.SQL, q.WriteRowIDs)
			}
		case *QueryPayload:
			aliased := false
			if p.run != nil {
				for _, rq := range p.run.Rec.Queries {
					if rq == p.Rec {
						aliased = true
					}
				}
			}
			fmt.Fprintf(&b, " query run=%d t=%d out=%x sql=%s sup=%v rep=%v aliased=%v",
				p.RunAction, p.Rec.Time, p.Rec.Outcome(), p.Rec.SQL, p.Superseded.Load(), p.Repaired, aliased)
		case string:
			fmt.Fprintf(&b, " patch %q", p)
		}
		b.WriteString("\n")
	}

	raw := w.DB.Raw()
	for _, table := range raw.Tables() {
		res, err := raw.ExecStmt(&sqldb.Select{Items: []sqldb.SelectItem{{Star: true}}, Table: table}, nil)
		if err != nil {
			t.Fatal(err)
		}
		fmt.Fprintf(&b, "table %s cols=%v\n", table, res.Columns)
		for _, row := range res.Rows {
			fmt.Fprintf(&b, "  %v\n", row)
		}
	}

	w.mu.Lock()
	clients := make([]string, 0, len(w.visitLogs))
	for c := range w.visitLogs {
		clients = append(clients, c)
	}
	sort.Strings(clients)
	for _, c := range clients {
		for _, v := range w.visitLogs[c] {
			fmt.Fprintf(&b, "visit %s/%d url=%s events=%d reqs=%d t=%d\n",
				v.ClientID, v.VisitID, v.URL, len(v.Events), len(v.Requests), v.Time)
		}
	}
	w.mu.Unlock()

	for _, c := range w.Conflicts() {
		fmt.Fprintf(&b, "conflict %s/%d kind=%v %s\n", c.Client, c.VisitID, c.Kind, c.Detail)
	}
	return b.String()
}

func sortedVersions(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k, v := range m {
		out = append(out, fmt.Sprintf("%s=%d", k, v))
	}
	sort.Strings(out)
	return out
}

func assertSameState(t *testing.T, label string, got, want *Warp) {
	t.Helper()
	g, w := dumpWarp(t, got), dumpWarp(t, want)
	if g != w {
		t.Fatalf("%s: state diverged\n--- got ---\n%s--- want ---\n%s", label, g, w)
	}
}

func copyDir(t *testing.T, src, dst string) {
	t.Helper()
	if err := os.MkdirAll(dst, 0o755); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// TestDurableRestart is the smallest end-to-end property: close, reopen,
// everything (graph, database, visit logs) is still there, and a repair
// works against the recovered state.
func TestDurableRestart(t *testing.T) {
	dir := t.TempDir()
	w := buildWarp(t, dir, 1)
	browsers := []*browser.Browser{w.NewBrowser(), w.NewBrowser(), w.NewBrowser()}
	for _, step := range workloadSteps(browsers) {
		step()
	}
	wantRuns := len(w.Graph.ByKind(history.KindAppRun))
	wantDump := dumpWarp(t, w)
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	w2 := buildWarp(t, dir, 1)
	defer w2.Close()
	if !w2.Recovered() {
		t.Fatal("reopen did not recover state")
	}
	if !w2.Recovery().FromSnapshot {
		t.Fatal("clean close should recover from the snapshot")
	}
	if got := len(w2.Graph.ByKind(history.KindAppRun)); got != wantRuns {
		t.Fatalf("recovered %d runs, want %d", got, wantRuns)
	}
	if got := dumpWarp(t, w2); got != wantDump {
		t.Fatalf("recovered state differs\n--- got ---\n%s--- want ---\n%s", got, wantDump)
	}

	rep, err := w2.RetroPatch("guestbook.php", app.Version{Entry: guestbookHandler(true), Note: "sanitize"})
	if err != nil {
		t.Fatalf("RetroPatch after recovery: %v", err)
	}
	if rep.AppRunsReexecuted == 0 {
		t.Fatal("repair on recovered state re-executed nothing")
	}
	res, _, err := w2.DB.Exec("SELECT msg FROM entries")
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.Rows {
		if strings.Contains(row[0].AsText(), "<script>") {
			t.Fatal("attack survived repair on recovered state")
		}
	}
}

// TestCrashMidWorkload kills the deployment after every workload step
// and asserts the acceptance property: the reopened instance is
// byte-identical to a never-restarted oracle that executed the same
// prefix, and a subsequent repair yields the identical final database.
func TestCrashMidWorkload(t *testing.T) {
	base := t.TempDir()
	live := filepath.Join(base, "live")
	w := buildWarp(t, live, 1)
	browsers := []*browser.Browser{w.NewBrowser(), w.NewBrowser(), w.NewBrowser()}
	steps := workloadSteps(browsers)
	for i, step := range steps {
		step()
		if err := w.FlushLogs(); err != nil {
			t.Fatal(err)
		}
		copyDir(t, live, filepath.Join(base, fmt.Sprintf("at-%d", i+1)))
	}
	w.Crash()

	for k := 1; k <= len(steps); k++ {
		// Oracle: a never-restarted run of the same prefix.
		oracle := buildWarp(t, "", 1)
		ob := []*browser.Browser{oracle.NewBrowser(), oracle.NewBrowser(), oracle.NewBrowser()}
		for _, step := range workloadSteps(ob)[:k] {
			step()
		}

		recovered := buildWarp(t, filepath.Join(base, fmt.Sprintf("at-%d", k)), 1)
		assertSameState(t, fmt.Sprintf("after crash at step %d", k), recovered, oracle)

		// The recovered timeline must repair exactly like the oracle's.
		patch := app.Version{Entry: guestbookHandler(true), Note: "sanitize"}
		if _, err := recovered.RetroPatch("guestbook.php", patch); err != nil {
			t.Fatalf("repair after crash at step %d: %v", k, err)
		}
		if _, err := oracle.RetroPatch("guestbook.php", patch); err != nil {
			t.Fatal(err)
		}
		assertSameState(t, fmt.Sprintf("repair after crash at step %d", k), recovered, oracle)
		recovered.Crash()
	}
}

// TestCrashMidRepair kills the deployment at arbitrary points inside a
// retroactive-patch repair, reopens, resumes the pending repair, and
// asserts the final state is identical to a never-crashed control —
// including the repaired database contents and the rewritten history.
func TestCrashMidRepair(t *testing.T) {
	patch := app.Version{Entry: guestbookHandler(true), Note: "sanitize"}
	runControl := func() *Warp {
		control := buildWarp(t, "", 1)
		cb := []*browser.Browser{control.NewBrowser(), control.NewBrowser(), control.NewBrowser()}
		for _, step := range workloadSteps(cb) {
			step()
		}
		if _, err := control.RetroPatch("guestbook.php", patch); err != nil {
			t.Fatal(err)
		}
		return control
	}
	control := runControl()

	for _, crashAt := range []int64{1, 2, 4, 7, 11, 16} {
		t.Run(fmt.Sprintf("trace-step-%d", crashAt), func(t *testing.T) {
			dir := t.TempDir()
			cfg := Config{Seed: 1, RepairWorkers: 1, Durability: testDurability()}
			var traced atomic.Int64
			var w *Warp
			cfg.Trace = func(string, ...any) {
				if traced.Add(1) == crashAt {
					w.Crash() // the process "dies" mid-repair
				}
			}
			var err error
			w, err = Open(dir, cfg)
			if err != nil {
				t.Fatal(err)
			}
			installGuestbook(t, w, false)
			browsers := []*browser.Browser{w.NewBrowser(), w.NewBrowser(), w.NewBrowser()}
			for _, step := range workloadSteps(browsers) {
				step()
			}
			if _, err := w.RetroPatch("guestbook.php", patch); err != nil {
				t.Fatalf("RetroPatch: %v", err)
			}
			if traced.Load() < crashAt {
				t.Fatalf("repair emitted only %d trace steps; crash point %d never hit", traced.Load(), crashAt)
			}

			recovered := buildWarp(t, dir, 1)
			it := recovered.PendingRepair()
			if it == nil {
				t.Fatal("no pending repair intent recovered")
			}
			if it.Kind != IntentRetroPatch || it.File != "guestbook.php" {
				t.Fatalf("unexpected intent %+v", it)
			}
			if _, err := recovered.ResumeRepair(&patch); err != nil {
				t.Fatalf("ResumeRepair: %v", err)
			}
			assertSameState(t, "resumed repair", recovered, control)
			if recovered.PendingRepair() != nil {
				t.Fatal("intent survived a committed resume")
			}
			if err := recovered.Close(); err != nil {
				t.Fatal(err)
			}

			// The committed resume must also be durable: reopen once more.
			again := buildWarp(t, dir, 1)
			if again.PendingRepair() != nil {
				t.Fatal("intent resurfaced after commit checkpoint")
			}
			assertSameState(t, "reopen after resumed repair", again, control)
			again.Crash()
		})
	}
}

// TestCrashMidUndoVisit covers intent resume for the undo family, which
// is self-contained (no code to re-supply).
func TestCrashMidUndoVisit(t *testing.T) {
	runWorkload := func(dir string, trace func(string, ...any)) (*Warp, []*browser.Browser) {
		cfg := Config{Seed: 1, RepairWorkers: 1, Durability: testDurability()}
		cfg.Trace = trace
		var w *Warp
		var err error
		if dir == "" {
			w = New(cfg)
		} else {
			w, err = Open(dir, cfg)
			if err != nil {
				t.Fatal(err)
			}
		}
		installGuestbook(t, w, false)
		browsers := []*browser.Browser{w.NewBrowser(), w.NewBrowser(), w.NewBrowser()}
		for _, step := range workloadSteps(browsers) {
			step()
		}
		return w, browsers
	}

	control, cb := runWorkload("", nil)
	if _, err := control.UndoVisit(cb[1].ClientID, 1, true); err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	var traced atomic.Int64
	var w *Warp
	w, browsers := runWorkload(dir, func(string, ...any) {
		if traced.Add(1) == 2 {
			w.Crash()
		}
	})
	if _, err := w.UndoVisit(browsers[1].ClientID, 1, true); err != nil {
		t.Fatal(err)
	}

	recovered := buildWarp(t, dir, 1)
	it := recovered.PendingRepair()
	if it == nil || it.Kind != IntentUndoVisit {
		t.Fatalf("pending intent = %+v", it)
	}
	if _, err := recovered.ResumeRepair(nil); err != nil {
		t.Fatalf("ResumeRepair: %v", err)
	}
	assertSameState(t, "resumed undo", recovered, control)
	recovered.Crash()
}

// TestCheckpointConcurrentWithUploads pins the WriteSnapshot locking
// design: checkpoints must not hold the store lock across the snapshot
// build, because uploaders hold the deployment lock while appending.
// (Regression test for an AB-BA deadlock between Checkpoint and
// UploadVisitLog.)
func TestCheckpointConcurrentWithUploads(t *testing.T) {
	dir := t.TempDir()
	w := buildWarp(t, dir, 1)
	b := w.NewBrowser()
	b.Open("/?author=alice&msg=seed")

	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 300; i++ {
			w.UploadVisitLog(&browser.VisitLog{ClientID: "uploader", VisitID: int64(i + 1000), URL: "/x"})
		}
	}()
	for i := 0; i < 25; i++ {
		if err := w.Checkpoint(); err != nil {
			t.Fatalf("Checkpoint %d: %v", i, err)
		}
	}
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("uploads and checkpoints deadlocked")
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	w2 := buildWarp(t, dir, 1)
	defer w2.Crash()
	if !w2.Recovered() {
		t.Fatal("nothing recovered after concurrent checkpoints")
	}
}

// TestWALCorruptionAtDeploymentLevel bit-flips and truncates the WAL of
// a crashed deployment and asserts Open either refuses or recovers a
// self-consistent state (replay succeeds, aliasing invariants hold) —
// never a half-loaded one.
func TestWALCorruptionAtDeploymentLevel(t *testing.T) {
	base := t.TempDir()
	orig := filepath.Join(base, "orig")
	w := buildWarp(t, orig, 1)
	browsers := []*browser.Browser{w.NewBrowser(), w.NewBrowser(), w.NewBrowser()}
	for _, step := range workloadSteps(browsers) {
		step()
	}
	if err := w.FlushLogs(); err != nil {
		t.Fatal(err)
	}
	w.Crash() // leave WAL only, no snapshot

	var walFiles []string
	entries, err := os.ReadDir(orig)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), "wal-") {
			if info, err := e.Info(); err == nil && info.Size() > 0 {
				walFiles = append(walFiles, e.Name())
			}
		}
	}
	if len(walFiles) == 0 {
		t.Fatal("no WAL segments found")
	}

	recoveredSome := false
	for trial := 0; trial < 40; trial++ {
		dir := filepath.Join(base, fmt.Sprintf("trial-%d", trial))
		copyDir(t, orig, dir)
		path := filepath.Join(dir, walFiles[trial%len(walFiles)])
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if trial%2 == 0 {
			data = data[:(trial*131)%len(data)]
		} else {
			i := (trial * 977) % len(data)
			data[i] ^= 1 << (trial % 8)
		}
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}

		cfg := Config{Seed: 1, RepairWorkers: 1}
		rec, err := Open(dir, cfg)
		if err != nil {
			continue // refusing corrupt state is an allowed outcome
		}
		recoveredSome = true
		// Whatever prefix loaded must be internally consistent: every
		// query action aliases its run's record, and the database serves
		// the recovered timeline.
		for _, a := range rec.Graph.All() {
			if qp, ok := a.Payload.(*QueryPayload); ok && qp.run != nil {
				found := false
				for _, rq := range qp.run.Rec.Queries {
					if rq == qp.Rec {
						found = true
					}
				}
				if !found {
					t.Fatalf("trial %d: query action %d lost its run aliasing", trial, a.ID)
				}
			}
		}
		if _, _, err := rec.DB.Exec("SELECT COUNT(*) FROM entries"); err != nil {
			// The table may legitimately not exist if the prefix ended
			// before the DDL; anything else is a broken recovery.
			if !strings.Contains(err.Error(), "no such table") {
				t.Fatalf("trial %d: recovered database broken: %v", trial, err)
			}
		}
		rec.Crash()
	}
	if !recoveredSome {
		t.Fatal("every corruption trial refused to open; expected some prefix recoveries")
	}
}
