package sqldb

// Execution introspection: how often compiled plans are reused and how
// often scans are narrowed by an index. WARP surfaces these per
// deployment (core.Warp.ExecStats) so an operator can see whether the
// normal-operation fast path is actually engaged — a plan hit-rate near
// zero means statements are being rebuilt per call, and a high full-scan
// share means the workload's predicates are not riding the indexes.

// execCounters is the DB's internal accumulator (guarded by DB.mu).
type execCounters struct {
	planHits   uint64
	planMisses uint64
	indexScans uint64
	fullScans  uint64
}

// ExecStats is a snapshot of the engine's execution counters.
type ExecStats struct {
	// StmtCacheHits / StmtCacheMisses count text→statement cache lookups
	// on the Exec entry point.
	StmtCacheHits   uint64
	StmtCacheMisses uint64
	// PlanHits / PlanMisses count compiled-plan reuses vs (re)compiles
	// across all cached-statement executions.
	PlanHits   uint64
	PlanMisses uint64
	// IndexScans / FullScans count row scans narrowed by an index probe
	// or walk vs scans that visited every live row.
	IndexScans uint64
	FullScans  uint64
}

// Sub returns the counter deltas s − prev, for measurements over a
// window bracketed by two snapshots.
func (s ExecStats) Sub(prev ExecStats) ExecStats {
	return ExecStats{
		StmtCacheHits:   s.StmtCacheHits - prev.StmtCacheHits,
		StmtCacheMisses: s.StmtCacheMisses - prev.StmtCacheMisses,
		PlanHits:        s.PlanHits - prev.PlanHits,
		PlanMisses:      s.PlanMisses - prev.PlanMisses,
		IndexScans:      s.IndexScans - prev.IndexScans,
		FullScans:       s.FullScans - prev.FullScans,
	}
}

// ExecStats returns a snapshot of the execution counters.
func (db *DB) ExecStats() ExecStats {
	db.mu.Lock()
	defer db.mu.Unlock()
	h, m := db.stmts.Stats()
	return ExecStats{
		StmtCacheHits:   h,
		StmtCacheMisses: m,
		PlanHits:        db.counters.planHits,
		PlanMisses:      db.counters.planMisses,
		IndexScans:      db.counters.indexScans,
		FullScans:       db.counters.fullScans,
	}
}

// noteScan records one scan's access path. Caller holds db.mu.
func (db *DB) noteScan(usedIndex bool) {
	if usedIndex {
		db.counters.indexScans++
	} else {
		db.counters.fullScans++
	}
}
