package ttdb

import (
	"testing"

	"warp/internal/sqldb"
	"warp/internal/vclock"
)

func newDB(t *testing.T) *DB {
	t.Helper()
	db := Open(&vclock.Clock{})
	if err := db.Annotate("pages", TableSpec{RowIDColumn: "page_id", PartitionColumns: []string{"title", "editor"}}); err != nil {
		t.Fatal(err)
	}
	mustExec(t, db, `CREATE TABLE pages (
		page_id INTEGER PRIMARY KEY,
		title TEXT NOT NULL,
		editor INTEGER,
		content TEXT DEFAULT ''
	)`)
	return db
}

func mustExec(t *testing.T, db *DB, src string, params ...sqldb.Value) (*sqldb.Result, *Record) {
	t.Helper()
	res, rec, err := db.Exec(src, params...)
	if err != nil {
		t.Fatalf("Exec(%q): %v", src, err)
	}
	return res, rec
}

func seedPages(t *testing.T, db *DB) {
	t.Helper()
	mustExec(t, db, `INSERT INTO pages (page_id, title, editor, content) VALUES
		(1, 'Main', 10, 'welcome'),
		(2, 'Sandbox', 11, 'play'),
		(3, 'Help', 10, 'docs')`)
}

func TestBasicCRUDInvisibleBookkeeping(t *testing.T) {
	db := newDB(t)
	seedPages(t, db)

	res, rec := mustExec(t, db, "SELECT * FROM pages WHERE title = 'Main'")
	if res.NumRows() != 1 {
		t.Fatalf("rows = %d", res.NumRows())
	}
	if len(res.Columns) != 4 {
		t.Fatalf("star must expand to user columns only, got %v", res.Columns)
	}
	if rec.Kind != KindRead {
		t.Fatalf("kind = %v", rec.Kind)
	}

	res, _ = mustExec(t, db, "UPDATE pages SET content = 'hi' WHERE page_id = 1")
	if res.Affected != 1 {
		t.Fatalf("affected = %d", res.Affected)
	}
	res, _ = mustExec(t, db, "SELECT content FROM pages WHERE page_id = 1")
	if res.FirstValue().AsText() != "hi" {
		t.Fatalf("content = %v", res.FirstValue())
	}

	res, _ = mustExec(t, db, "DELETE FROM pages WHERE page_id = 2")
	if res.Affected != 1 {
		t.Fatalf("delete affected = %d", res.Affected)
	}
	res, _ = mustExec(t, db, "SELECT COUNT(*) FROM pages")
	if res.FirstValue().AsInt() != 2 {
		t.Fatalf("count = %v", res.FirstValue())
	}
}

func TestVersionsAccumulate(t *testing.T) {
	db := newDB(t)
	seedPages(t, db)
	for i := 0; i < 5; i++ {
		mustExec(t, db, "UPDATE pages SET content = content || 'x' WHERE page_id = 1")
	}
	// 3 initial rows + 5 historical versions of page 1.
	if n := db.Raw().RowCount("pages"); n != 8 {
		t.Fatalf("physical rows = %d, want 8", n)
	}
	// Application sees 3.
	res, _ := mustExec(t, db, "SELECT COUNT(*) FROM pages")
	if res.FirstValue().AsInt() != 3 {
		t.Fatalf("app-visible count = %v", res.FirstValue())
	}
}

func TestRecordDependencies(t *testing.T) {
	db := newDB(t)
	seedPages(t, db)

	// Read with partition-column equality: precise partition.
	_, rec := mustExec(t, db, "SELECT * FROM pages WHERE title = 'Main'")
	if len(rec.ReadPartitions) != 1 || rec.ReadPartitions[0].IsWholeTable() {
		t.Fatalf("read partitions = %v", rec.ReadPartitions)
	}
	if rec.ReadPartitions[0].Column != "title" {
		t.Fatalf("partition column = %v", rec.ReadPartitions[0])
	}

	// Read without usable predicate: whole table.
	_, rec = mustExec(t, db, "SELECT * FROM pages WHERE content = 'welcome'")
	if len(rec.ReadPartitions) != 1 || !rec.ReadPartitions[0].IsWholeTable() {
		t.Fatalf("conservative fallback missing: %v", rec.ReadPartitions)
	}

	// IN list over a partition column: one partition per member.
	_, rec = mustExec(t, db, "SELECT * FROM pages WHERE title IN ('Main', 'Help')")
	if len(rec.ReadPartitions) != 2 {
		t.Fatalf("IN partitions = %v", rec.ReadPartitions)
	}

	// Write records row IDs and both partition columns of touched rows.
	_, rec = mustExec(t, db, "UPDATE pages SET editor = 99 WHERE title = 'Main'")
	if len(rec.WriteRowIDs) != 1 || rec.WriteRowIDs[0].AsInt() != 1 {
		t.Fatalf("write row ids = %v", rec.WriteRowIDs)
	}
	// Old editor 10 and new editor 99 partitions must both appear.
	keys := map[string]bool{}
	for _, p := range rec.WritePartitions {
		keys[p.String()] = true
	}
	if !keys["pages/editor=i10"] || !keys["pages/editor=i99"] || !keys["pages/title=tMain"] {
		t.Fatalf("write partitions missing old/new values: %v", rec.WritePartitions)
	}
}

func TestTimeTravelReads(t *testing.T) {
	db := newDB(t)
	seedPages(t, db)
	_, recBefore := mustExec(t, db, "SELECT content FROM pages WHERE page_id = 1")
	tBefore := recBefore.Time
	mustExec(t, db, "UPDATE pages SET content = 'changed' WHERE page_id = 1")

	// Re-executing the read at its original time during repair must see the
	// old value (continuous versioning, §4.2).
	if _, err := db.BeginRepair(); err != nil {
		t.Fatal(err)
	}
	res, _, err := db.ReExec("SELECT content FROM pages WHERE page_id = 1", nil, tBefore, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.FirstValue().AsText() != "welcome" {
		t.Fatalf("time-travel read = %q, want welcome", res.FirstValue().AsText())
	}
	if err := db.FinishRepair(); err != nil {
		t.Fatal(err)
	}
}

func TestRollbackRestoresPreWriteState(t *testing.T) {
	db := newDB(t)
	seedPages(t, db)
	_, recW := mustExec(t, db, "UPDATE pages SET content = 'attacked' WHERE page_id = 1")
	mustExec(t, db, "UPDATE pages SET content = 'attacked2' WHERE page_id = 1")

	if _, err := db.BeginRepair(); err != nil {
		t.Fatal(err)
	}
	dirt, err := db.RollbackRow("pages", sqldb.Int(1), recW.Time)
	if err != nil {
		t.Fatal(err)
	}
	if len(dirt) == 0 {
		t.Fatal("rollback reported no dirtied partitions")
	}
	// In the repair generation the row is back to its pre-attack value.
	next := db.CurrentGen() + 1
	res, _, err := db.ReExec("SELECT content FROM pages WHERE page_id = 1", nil, db.Clock().Now(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.FirstValue().AsText() != "welcome" {
		t.Fatalf("repair-gen content = %q, want welcome (gen %d)", res.FirstValue().AsText(), next)
	}
	// Normal execution still sees the attacked value (§4.3).
	res, _ = mustExec(t, db, "SELECT content FROM pages WHERE page_id = 1")
	if res.FirstValue().AsText() != "attacked2" {
		t.Fatalf("current-gen content = %q, want attacked2", res.FirstValue().AsText())
	}
	// After finishing repair, the repaired state wins.
	if err := db.FinishRepair(); err != nil {
		t.Fatal(err)
	}
	res, _ = mustExec(t, db, "SELECT content FROM pages WHERE page_id = 1")
	if res.FirstValue().AsText() != "welcome" {
		t.Fatalf("post-repair content = %q, want welcome", res.FirstValue().AsText())
	}
}

func TestRollbackOfInsertRemovesRow(t *testing.T) {
	db := newDB(t)
	seedPages(t, db)
	_, recIns := mustExec(t, db, "INSERT INTO pages (page_id, title, editor, content) VALUES (4, 'Evil', 66, 'attack')")

	if _, err := db.BeginRepair(); err != nil {
		t.Fatal(err)
	}
	if _, err := db.RollbackRow("pages", sqldb.Int(4), recIns.Time); err != nil {
		t.Fatal(err)
	}
	res, _, err := db.ReExec("SELECT COUNT(*) FROM pages", nil, db.Clock().Now(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.FirstValue().AsInt() != 3 {
		t.Fatalf("repair gen count = %v, want 3", res.FirstValue())
	}
	// Current generation unaffected until the flip.
	res, _ = mustExec(t, db, "SELECT COUNT(*) FROM pages")
	if res.FirstValue().AsInt() != 4 {
		t.Fatalf("current gen count = %v, want 4", res.FirstValue())
	}
	if err := db.FinishRepair(); err != nil {
		t.Fatal(err)
	}
	res, _ = mustExec(t, db, "SELECT COUNT(*) FROM pages")
	if res.FirstValue().AsInt() != 3 {
		t.Fatalf("post-repair count = %v, want 3", res.FirstValue())
	}
}

func TestRollbackOfDeleteRevivesRow(t *testing.T) {
	db := newDB(t)
	seedPages(t, db)
	_, recDel := mustExec(t, db, "DELETE FROM pages WHERE page_id = 2")

	if _, err := db.BeginRepair(); err != nil {
		t.Fatal(err)
	}
	if _, err := db.RollbackRow("pages", sqldb.Int(2), recDel.Time); err != nil {
		t.Fatal(err)
	}
	res, _, err := db.ReExec("SELECT title FROM pages WHERE page_id = 2", nil, db.Clock().Now(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() != 1 || res.FirstValue().AsText() != "Sandbox" {
		t.Fatalf("revived row = %v", res.Rows)
	}
	if err := db.FinishRepair(); err != nil {
		t.Fatal(err)
	}
	res, _ = mustExec(t, db, "SELECT COUNT(*) FROM pages")
	if res.FirstValue().AsInt() != 3 {
		t.Fatalf("post-repair count = %v", res.FirstValue())
	}
}

func TestTwoPhaseReExecUpdate(t *testing.T) {
	// The paper's §4.2 example: a multi-row write whose WHERE clause
	// matches different rows after repair.
	db := newDB(t)
	seedPages(t, db)
	// Advance logical time so a repair action can be inserted between the
	// seed inserts and the write under test.
	mustExec(t, db, "SELECT COUNT(*) FROM pages")
	mustExec(t, db, "SELECT COUNT(*) FROM pages")
	// Original: appends to pages edited by editor 10 (pages 1 and 3).
	_, recW, err := db.Exec("UPDATE pages SET content = content || '+tag' WHERE editor = 10")
	if err != nil {
		t.Fatal(err)
	}
	if len(recW.WriteRowIDs) != 2 {
		t.Fatalf("write set = %v", recW.WriteRowIDs)
	}

	if _, err := db.BeginRepair(); err != nil {
		t.Fatal(err)
	}
	// Suppose repair changed page 3's editor to 11 before this write: roll
	// back page 3 to before the write and change its editor at that time.
	if _, err := db.RollbackRow("pages", sqldb.Int(3), recW.Time); err != nil {
		t.Fatal(err)
	}
	if _, _, err := db.ReExec("UPDATE pages SET editor = 11 WHERE page_id = 3", nil, recW.Time-1, nil); err != nil {
		t.Fatal(err)
	}
	// Re-execute the original write at its original time: it should now
	// match only page 1, and page 1 must first be rolled back so the append
	// is not applied twice.
	res, rec2, err := db.ReExec(recW.SQL, recW.Params, recW.Time, recW)
	if err != nil {
		t.Fatal(err)
	}
	if res.Affected != 1 {
		t.Fatalf("re-exec affected = %d, want 1", res.Affected)
	}
	if len(rec2.WriteRowIDs) != 1 || rec2.WriteRowIDs[0].AsInt() != 1 {
		t.Fatalf("re-exec write set = %v", rec2.WriteRowIDs)
	}
	if err := db.FinishRepair(); err != nil {
		t.Fatal(err)
	}
	res, _ = mustExec(t, db, "SELECT content FROM pages WHERE page_id = 1")
	if res.FirstValue().AsText() != "welcome+tag" {
		t.Fatalf("page 1 = %q, want welcome+tag (applied exactly once)", res.FirstValue().AsText())
	}
	res, _ = mustExec(t, db, "SELECT content FROM pages WHERE page_id = 3")
	if res.FirstValue().AsText() != "docs" {
		t.Fatalf("page 3 = %q, want docs (no longer matched)", res.FirstValue().AsText())
	}
}

func TestConcurrentNormalOperationDuringRepair(t *testing.T) {
	db := newDB(t)
	seedPages(t, db)
	if _, err := db.BeginRepair(); err != nil {
		t.Fatal(err)
	}
	// Normal operation proceeds during repair on an untouched partition.
	mustExec(t, db, "UPDATE pages SET content = 'during' WHERE page_id = 2")
	res, _ := mustExec(t, db, "SELECT content FROM pages WHERE page_id = 2")
	if res.FirstValue().AsText() != "during" {
		t.Fatalf("normal op during repair: %v", res.FirstValue())
	}
	// The untouched partition's change is visible in the repair generation
	// verbatim (§4.3: "copied verbatim into the next generation").
	res, _, err := db.ReExec("SELECT content FROM pages WHERE page_id = 2", nil, db.Clock().Now(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.FirstValue().AsText() != "during" {
		t.Fatalf("verbatim sharing: %v", res.FirstValue())
	}
	if err := db.FinishRepair(); err != nil {
		t.Fatal(err)
	}
	res, _ = mustExec(t, db, "SELECT content FROM pages WHERE page_id = 2")
	if res.FirstValue().AsText() != "during" {
		t.Fatalf("post-flip: %v", res.FirstValue())
	}
}

func TestAbortRepairRestoresEverything(t *testing.T) {
	db := newDB(t)
	seedPages(t, db)
	_, recW := mustExec(t, db, "UPDATE pages SET content = 'v2' WHERE page_id = 1")

	statBefore := db.Stats()
	if _, err := db.BeginRepair(); err != nil {
		t.Fatal(err)
	}
	if _, err := db.RollbackRow("pages", sqldb.Int(1), recW.Time); err != nil {
		t.Fatal(err)
	}
	if _, _, err := db.ReExec("UPDATE pages SET content = 'repaired' WHERE page_id = 1", nil, recW.Time, nil); err != nil {
		t.Fatal(err)
	}
	if err := db.AbortRepair(); err != nil {
		t.Fatal(err)
	}
	res, _ := mustExec(t, db, "SELECT content FROM pages WHERE page_id = 1")
	if res.FirstValue().AsText() != "v2" {
		t.Fatalf("abort did not restore: %v", res.FirstValue())
	}
	// Physical storage returns to the pre-repair shape.
	if got := db.Stats(); got.PhysicalRows != statBefore.PhysicalRows {
		t.Fatalf("physical rows %d after abort, want %d", got.PhysicalRows, statBefore.PhysicalRows)
	}
}

func TestUniquenessAcrossVersions(t *testing.T) {
	db := newDB(t)
	seedPages(t, db)
	// Deleting and re-creating a row with the same primary key must work:
	// versions coexist because constraints include end_time/end_gen (§6).
	mustExec(t, db, "DELETE FROM pages WHERE page_id = 1")
	mustExec(t, db, "INSERT INTO pages (page_id, title, editor, content) VALUES (1, 'Main', 12, 'recreated')")
	// But a live duplicate is still rejected.
	_, _, err := db.Exec("INSERT INTO pages (page_id, title, editor, content) VALUES (1, 'Dup', 12, '')")
	if err == nil || !sqldb.IsUniqueViolation(err) {
		t.Fatalf("want live unique violation, got %v", err)
	}
}

func TestFailedInsertIsRecorded(t *testing.T) {
	db := newDB(t)
	seedPages(t, db)
	_, rec, err := db.Exec("INSERT INTO pages (page_id, title) VALUES (1, 'Dup')")
	if err == nil {
		t.Fatal("expected violation")
	}
	if rec == nil || rec.ErrText == "" {
		t.Fatal("failed insert must still produce a record with the error outcome")
	}
	if rec.Outcome() == (&Record{}).Outcome() {
		t.Fatal("error outcome must differ from empty outcome")
	}
}

func TestSyntheticRowIDs(t *testing.T) {
	db := Open(&vclock.Clock{})
	// No annotation: row IDs are synthesized invisibly.
	if _, _, err := db.Exec("CREATE TABLE notes (body TEXT)"); err != nil {
		t.Fatal(err)
	}
	_, rec, err := db.Exec("INSERT INTO notes (body) VALUES ('a'), ('b')")
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.WriteRowIDs) != 2 {
		t.Fatalf("synthetic ids = %v", rec.WriteRowIDs)
	}
	if rec.WriteRowIDs[0].AsInt() == rec.WriteRowIDs[1].AsInt() {
		t.Fatal("synthetic ids must be distinct")
	}
	res, _, err := db.Exec("SELECT * FROM notes")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Columns) != 1 || res.Columns[0] != "body" {
		t.Fatalf("synthetic columns leaked: %v", res.Columns)
	}
	// Tables without partition annotations use whole-table dependencies.
	_, rec, _ = db.Exec("SELECT * FROM notes WHERE body = 'a'")
	if len(rec.ReadPartitions) != 1 || !rec.ReadPartitions[0].IsWholeTable() {
		t.Fatalf("unannotated reads must be whole-table: %v", rec.ReadPartitions)
	}
}

func TestReservedColumnsRejected(t *testing.T) {
	db := newDB(t)
	if _, _, err := db.Exec("UPDATE pages SET warp_end_time = 0 WHERE page_id = 1"); err == nil {
		t.Fatal("reserved column write must fail")
	}
	if _, _, err := db.Exec("UPDATE pages SET page_id = 9 WHERE page_id = 1"); err == nil {
		t.Fatal("row ID column update must fail")
	}
	if err := db.Annotate("t2", TableSpec{}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := db.Exec("CREATE TABLE t2 (warp_row_id INTEGER)"); err == nil {
		t.Fatal("reserved column declaration must fail")
	}
}

func TestGC(t *testing.T) {
	db := newDB(t)
	seedPages(t, db)
	for i := 0; i < 10; i++ {
		mustExec(t, db, "UPDATE pages SET content = content || '.' WHERE page_id = 1")
	}
	before := db.Stats().PhysicalRows
	horizon := db.Clock().Now() - 2
	if err := db.GC(horizon); err != nil {
		t.Fatal(err)
	}
	after := db.Stats().PhysicalRows
	if after >= before {
		t.Fatalf("GC did not shrink storage: %d -> %d", before, after)
	}
	// Live data is untouched.
	res, _ := mustExec(t, db, "SELECT COUNT(*) FROM pages")
	if res.FirstValue().AsInt() != 3 {
		t.Fatalf("GC damaged live rows: %v", res.FirstValue())
	}
	// Rollback beyond the horizon is refused.
	if _, err := db.BeginRepair(); err != nil {
		t.Fatal(err)
	}
	if _, err := db.RollbackRow("pages", sqldb.Int(1), horizon-1); err == nil {
		t.Fatal("rollback beyond GC horizon must fail")
	}
	if err := db.AbortRepair(); err != nil {
		t.Fatal(err)
	}
}

func TestRepairStateErrors(t *testing.T) {
	db := newDB(t)
	if _, err := db.RollbackRow("pages", sqldb.Int(1), 1); err == nil {
		t.Fatal("rollback outside repair must fail")
	}
	if _, _, err := db.ReExec("SELECT 1", nil, 1, nil); err == nil {
		t.Fatal("ReExec outside repair must fail")
	}
	if err := db.FinishRepair(); err == nil {
		t.Fatal("FinishRepair without BeginRepair must fail")
	}
	if _, err := db.BeginRepair(); err != nil {
		t.Fatal(err)
	}
	if _, err := db.BeginRepair(); err == nil {
		t.Fatal("nested BeginRepair must fail")
	}
	if err := db.GC(1); err == nil {
		t.Fatal("GC during repair must fail")
	}
	if err := db.AbortRepair(); err != nil {
		t.Fatal(err)
	}
}

func TestPartitionSetOverlap(t *testing.T) {
	s := NewPartitionSet()
	s.Add(Partition{Table: "pages", Column: "title", Key: "tMain"})
	if !s.OverlapsAny([]Partition{{Table: "pages", Column: "title", Key: "tMain"}}) {
		t.Fatal("same key must overlap")
	}
	if s.OverlapsAny([]Partition{{Table: "pages", Column: "title", Key: "tOther"}}) {
		t.Fatal("different key must not overlap")
	}
	if !s.OverlapsAny([]Partition{WholeTable("pages")}) {
		t.Fatal("whole table must overlap any key")
	}
	if s.OverlapsAny([]Partition{WholeTable("users")}) {
		t.Fatal("different table must not overlap")
	}
	s.Add(WholeTable("users"))
	if !s.OverlapsAny([]Partition{{Table: "users", Column: "name", Key: "talice"}}) {
		t.Fatal("whole-table entry must cover keys")
	}
}
