package browser

import (
	"fmt"
	"math/rand"
	"net/url"
	"strings"
	"testing"

	"warp/internal/httpd"
)

// fakeWiki is a miniature stateful server for browser tests: pages are
// stored in a map and /edit.php renders a form whose submission updates
// them. It records every request it sees.
type fakeWiki struct {
	pages     map[string]string
	requests  []*httpd.Request
	frameDeny bool
}

func newFakeWiki() *fakeWiki {
	return &fakeWiki{pages: map[string]string{
		"Main":    "welcome to the wiki",
		"Sandbox": "play here",
	}}
}

func (w *fakeWiki) transport(req *httpd.Request) *httpd.Response {
	w.requests = append(w.requests, req)
	switch req.Path {
	case "/view.php":
		title := req.Param("title")
		body, ok := w.pages[title]
		if !ok {
			return httpd.NotFound("no such page")
		}
		resp := httpd.HTML(fmt.Sprintf(
			`<html><body><h1>%s</h1><div id="content">%s</div><a href="/edit.php?title=%s">edit</a></body></html>`,
			title, body, url.QueryEscape(title)))
		if w.frameDeny {
			resp.Headers["X-Frame-Options"] = "DENY"
		}
		return resp
	case "/edit.php":
		title := req.Param("title")
		if req.Method == "POST" {
			w.pages[title] = req.Form.Get("content")
			return httpd.Redirect("/view.php?title=" + url.QueryEscape(title))
		}
		return httpd.HTML(fmt.Sprintf(
			`<html><body><form action="/edit.php" method="post"><input type="hidden" name="title" value="%s"/><textarea name="content">%s</textarea></form></body></html>`,
			title, w.pages[title]))
	case "/login.php":
		resp := httpd.Redirect("/view.php?title=Main")
		resp.SetCookie("session", "sess-"+req.Param("user"))
		return resp
	}
	return httpd.NotFound("unknown path")
}

func newTestBrowser(w *fakeWiki, logs *[]*VisitLog) *Browser {
	upload := func(l *VisitLog) {
		if logs != nil {
			*logs = append(*logs, l)
		}
	}
	return New(w.transport, upload, rand.New(rand.NewSource(1)))
}

func TestBrowseAndHeaders(t *testing.T) {
	w := newFakeWiki()
	var logs []*VisitLog
	b := newTestBrowser(w, &logs)

	p := b.Open("/view.php?title=Main")
	if p.DOM == nil || !strings.Contains(p.DOM.InnerText(), "welcome") {
		t.Fatalf("page did not render: %v", p.DOM)
	}
	req := w.requests[0]
	if req.ClientID != b.ClientID || req.VisitID != 1 || req.RequestID != 1 {
		t.Fatalf("extension headers missing: %+v", req)
	}
	if len(logs) != 1 || logs[0].URL != "/view.php?title=Main" {
		t.Fatalf("visit log: %+v", logs)
	}
}

func TestClickEditTypeSubmitFlow(t *testing.T) {
	w := newFakeWiki()
	var logs []*VisitLog
	b := newTestBrowser(w, &logs)

	p1 := b.Open("/view.php?title=Main")
	p2, err := p1.ClickLink("edit")
	if err != nil {
		t.Fatal(err)
	}
	if p2.Log.ParentVisit != p1.Log.VisitID {
		t.Fatalf("visit dependency missing: %+v", p2.Log)
	}
	if err := p2.TypeInto("content", "welcome to the wiki\nmy new line"); err != nil {
		t.Fatal(err)
	}
	p3, err := p2.Submit(0)
	if err != nil {
		t.Fatal(err)
	}
	if w.pages["Main"] != "welcome to the wiki\nmy new line" {
		t.Fatalf("edit not applied: %q", w.pages["Main"])
	}
	if p3.Log.ParentVisit != p2.Log.VisitID {
		t.Fatal("submit navigation dependency missing")
	}
	// Events were recorded with XPaths and base text.
	var input *Event
	for i := range logs[1].Events {
		if logs[1].Events[i].Kind == EventInput {
			input = &logs[1].Events[i]
		}
	}
	if input == nil || input.Base != "welcome to the wiki" || !strings.Contains(input.XPath, "textarea") {
		t.Fatalf("input event: %+v", input)
	}
}

func TestCookiesFollowResponses(t *testing.T) {
	w := newFakeWiki()
	b := newTestBrowser(w, nil)
	p := b.Open("/view.php?title=Main")
	p.roundTrip("POST", "/login.php", url.Values{"user": {"alice"}})
	if b.Cookies()["session"] != "sess-alice" {
		t.Fatalf("cookie jar: %v", b.Cookies())
	}
	// Subsequent requests carry the cookie.
	b.Open("/view.php?title=Main")
	last := w.requests[len(w.requests)-1]
	if last.Cookie("session") != "sess-alice" {
		t.Fatalf("cookie not sent: %v", last.Cookies)
	}
}

func TestScriptExecution(t *testing.T) {
	w := newFakeWiki()
	b := newTestBrowser(w, nil)
	// A stored-XSS-style page: script appends text to another page via its
	// edit form (read-modify-write through the browser).
	w.pages["Infected"] = `see below<script>warpjs: appendedit /edit.php?title=Sandbox content  PWNED</script>`
	b.Open("/view.php?title=Infected")
	if !strings.Contains(w.pages["Sandbox"], "PWNED") {
		t.Fatalf("script edit did not run: %q", w.pages["Sandbox"])
	}
	if !strings.HasPrefix(w.pages["Sandbox"], "play here") {
		t.Fatalf("append must preserve original: %q", w.pages["Sandbox"])
	}
}

func TestScriptSelfPropagation(t *testing.T) {
	w := newFakeWiki()
	b := newTestBrowser(w, nil)
	w.pages["Infected"] = `x<script>warpjs: appendedit /edit.php?title=Sandbox content {self}</script>`
	b.Open("/view.php?title=Infected")
	if !strings.Contains(w.pages["Sandbox"], "warpjs: appendedit") {
		t.Fatalf("self propagation failed: %q", w.pages["Sandbox"])
	}
}

func TestScriptPost(t *testing.T) {
	w := newFakeWiki()
	b := newTestBrowser(w, nil)
	// CSRF-style: a script logs the victim in under the attacker account.
	html := `<html><body><script>warpjs: post /login.php user=attacker</script></body></html>`
	b.OpenAttackerPage("http://evil.example/", html)
	if b.Cookies()["session"] != "sess-attacker" {
		t.Fatalf("login CSRF simulation failed: %v", b.Cookies())
	}
}

func TestIFrameLoadingAndBlocking(t *testing.T) {
	w := newFakeWiki()
	var logs []*VisitLog
	b := newTestBrowser(w, &logs)
	html := `<html><body><iframe src="/view.php?title=Main"></iframe></body></html>`
	p := b.OpenAttackerPage("http://evil.example/game", html)
	if len(p.Frames()) != 1 {
		t.Fatalf("frames = %d", len(p.Frames()))
	}
	frame := p.Frames()[0]
	if frame.Blocked || frame.DOM == nil {
		t.Fatal("frame should have loaded")
	}
	if !frame.Log.IsFrame || frame.Log.ParentVisit != p.Log.VisitID {
		t.Fatalf("frame log: %+v", frame.Log)
	}
	// With X-Frame-Options: DENY the frame refuses to render.
	w.frameDeny = true
	p2 := b.OpenAttackerPage("http://evil.example/game", html)
	if !p2.Frames()[0].Blocked {
		t.Fatal("frame should be blocked by X-Frame-Options")
	}
}

func TestNoExtensionRecordsNothing(t *testing.T) {
	w := newFakeWiki()
	var logs []*VisitLog
	b := newTestBrowser(w, &logs)
	b.HasExtension = false
	p := b.Open("/view.php?title=Main")
	_ = p
	if len(logs) != 0 {
		t.Fatalf("logs uploaded without extension: %d", len(logs))
	}
	if w.requests[0].ClientID != "" {
		t.Fatal("extension headers sent without extension")
	}
}

//
// Replay tests
//

func TestReplayCleanPageReissuesRequests(t *testing.T) {
	w := newFakeWiki()
	var logs []*VisitLog
	b := newTestBrowser(w, &logs)
	p1 := b.Open("/view.php?title=Main")
	p2, _ := p1.ClickLink("edit")
	p2.TypeInto("content", "welcome to the wiki EDITED")
	p2.Submit(0)

	// Replay visit 2 (the edit form) against an identical page.
	editLog := logs[1]
	replayW := newFakeWiki()
	mainResp := replayW.transport(httpd.NewRequest("GET", editLog.URL))
	out := ReplayVisit(editLog, mainResp, "", map[string]string{}, replayW.transport, FullReplay)
	if out.Conflicted() {
		t.Fatalf("conflicts: %+v", out.Conflicts)
	}
	if len(out.Navigations) != 1 || out.Navigations[0].Method != "POST" {
		t.Fatalf("navigations: %+v", out.Navigations)
	}
	if got := out.Navigations[0].Form.Get("content"); got != "welcome to the wiki EDITED" {
		t.Fatalf("replayed form content: %q", got)
	}
}

func TestReplayMergesUserEditOntoRepairedPage(t *testing.T) {
	w := newFakeWiki()
	var logs []*VisitLog
	b := newTestBrowser(w, &logs)
	// Original page had attacker-appended text; the user edited on top.
	w.pages["Main"] = "welcome to the wiki\nATTACK LINE"
	p1 := b.Open("/view.php?title=Main")
	p2, _ := p1.ClickLink("edit")
	p2.TypeInto("content", "welcome to the wiki\nATTACK LINE\nuser line")
	p2.Submit(0)

	// During repair the edit form serves the clean page.
	editLog := logs[1]
	replayW := newFakeWiki()
	replayW.pages["Main"] = "welcome to the wiki"
	mainResp := replayW.transport(httpd.NewRequest("GET", editLog.URL))
	out := ReplayVisit(editLog, mainResp, "", map[string]string{}, replayW.transport, FullReplay)
	if out.Conflicted() {
		t.Fatalf("conflicts: %+v", out.Conflicts)
	}
	got := out.Navigations[0].Form.Get("content")
	if got != "welcome to the wiki\nuser line" {
		t.Fatalf("merged content = %q, want user line preserved and attack gone", got)
	}
}

func TestReplayConflictMatrix(t *testing.T) {
	// The §8.3 behaviors: overwrite attacks conflict even with merge; a
	// changed field conflicts without merge; no log always conflicts.
	w := newFakeWiki()
	var logs []*VisitLog
	b := newTestBrowser(w, &logs)
	w.pages["Main"] = "ATTACKER OVERWROTE EVERYTHING"
	p1 := b.Open("/view.php?title=Main")
	p2, _ := p1.ClickLink("edit")
	p2.TypeInto("content", "ATTACKER OVERWROTE EVERYTHING plus my edit")
	p2.Submit(0)
	editLog := logs[1]

	replayW := newFakeWiki()
	replayW.pages["Main"] = "welcome to the wiki"
	mainResp := replayW.transport(httpd.NewRequest("GET", editLog.URL))

	out := ReplayVisit(editLog, mainResp, "", map[string]string{}, replayW.transport, FullReplay)
	if !out.Conflicted() || out.Conflicts[0].Kind != ConflictMerge {
		t.Fatalf("overwrite should merge-conflict: %+v", out.Conflicts)
	}
	noMerge := ReplayConfig{HasLog: true, TextMerge: false}
	out = ReplayVisit(editLog, mainResp, "", map[string]string{}, replayW.transport, noMerge)
	if !out.Conflicted() || out.Conflicts[0].Kind != ConflictFieldChanged {
		t.Fatalf("no-merge should field-conflict: %+v", out.Conflicts)
	}
	out = ReplayVisit(editLog, mainResp, "", map[string]string{}, replayW.transport, ReplayConfig{HasLog: false})
	if !out.Conflicted() || out.Conflicts[0].Kind != ConflictNoLog {
		t.Fatalf("no-log should conflict: %+v", out.Conflicts)
	}
}

func TestReplayScriptGoneAfterRepair(t *testing.T) {
	w := newFakeWiki()
	var logs []*VisitLog
	b := newTestBrowser(w, &logs)
	w.pages["Infected"] = `x<script>warpjs: appendedit /edit.php?title=Sandbox content PWNED</script>`
	b.Open("/view.php?title=Infected")
	visitLog := logs[0]
	if len(visitLog.Requests) < 3 {
		t.Fatalf("attack should have issued extra requests: %d", len(visitLog.Requests))
	}

	// Repaired page: script removed. Replay issues no attack requests.
	replayW := newFakeWiki()
	replayW.pages["Infected"] = "x"
	mainResp := replayW.transport(httpd.NewRequest("GET", "/view.php?title=Infected"))
	before := len(replayW.requests)
	out := ReplayVisit(visitLog, mainResp, "", map[string]string{}, replayW.transport, FullReplay)
	if out.Conflicted() {
		t.Fatalf("clean replay conflicted: %+v", out.Conflicts)
	}
	if len(replayW.requests) != before {
		t.Fatalf("repaired page still issued %d requests", len(replayW.requests)-before)
	}
	if replayW.pages["Sandbox"] != "play here" {
		t.Fatal("replay corrupted the page")
	}
}

func TestReplayFrameBlocked(t *testing.T) {
	w := newFakeWiki()
	var logs []*VisitLog
	b := newTestBrowser(w, &logs)
	html := `<html><body><iframe src="/view.php?title=Main"></iframe></body></html>`
	p := b.OpenAttackerPage("http://evil.example/game", html)
	frame := p.Frames()[0]
	frame.TypeInto("nonexistent", "x") // no field: returns error, fine
	// Record a real event inside the frame by clicking the edit link.
	frame.ClickLink("edit")
	frameLog := frame.Log

	// After the clickjacking patch the frame response carries DENY.
	resp := httpd.HTML("<html><body>content</body></html>")
	resp.Headers["X-Frame-Options"] = "DENY"
	out := ReplayVisit(frameLog, resp, "", map[string]string{}, w.transport, FullReplay)
	if !out.Conflicted() || out.Conflicts[0].Kind != ConflictFrameBlocked {
		t.Fatalf("expected frame-blocked conflict: %+v", out.Conflicts)
	}
}

func TestReplayMatchesOriginalRequestIDs(t *testing.T) {
	w := newFakeWiki()
	var logs []*VisitLog
	b := newTestBrowser(w, &logs)
	w.pages["Infected"] = `x<script>warpjs: get /view.php?title=Sandbox</script>`
	b.Open("/view.php?title=Infected")
	visitLog := logs[0]

	// Replay with the same page: the script request must reuse its
	// original request ID.
	replayW := newFakeWiki()
	replayW.pages["Infected"] = w.pages["Infected"]
	mainResp := replayW.transport(httpd.NewRequest("GET", "/view.php?title=Infected"))
	out := ReplayVisit(visitLog, mainResp, "", map[string]string{}, replayW.transport, FullReplay)
	if len(out.Requests) != 1 {
		t.Fatalf("replay requests: %+v", out.Requests)
	}
	var origID int64
	for _, tr := range visitLog.Requests {
		if strings.Contains(tr.URL, "Sandbox") {
			origID = tr.RequestID
		}
	}
	if out.Requests[0].RequestID != origID {
		t.Fatalf("request ID not matched: got %d want %d", out.Requests[0].RequestID, origID)
	}
}

func TestReplayUIConflictHook(t *testing.T) {
	w := newFakeWiki()
	var logs []*VisitLog
	b := newTestBrowser(w, &logs)
	b.Open("/view.php?title=Main")
	visitLog := logs[0]
	mainResp := httpd.HTML("<html><body>balance: $2000</body></html>")
	cfg := FullReplay
	cfg.UIConflict = func(orig, repaired string) bool {
		return strings.Contains(repaired, "$2000") && !strings.Contains(orig, "$2000")
	}
	out := ReplayVisit(visitLog, mainResp, "<html><body>balance: $1000</body></html>", map[string]string{}, w.transport, cfg)
	if !out.Conflicted() || out.Conflicts[0].Kind != ConflictUI {
		t.Fatalf("UI conflict hook: %+v", out.Conflicts)
	}
}
