// Binary codecs for the core's durable objects: history actions with
// their run/query payloads, HTTP requests and responses, browser visit
// logs, conflicts, and repair intents. Used both for WAL records and for
// snapshot encoding (docs/persistence.md).
//
// The run/query aliasing invariant matters here: a QueryPayload's Rec
// pointer is the same object as the owning run's Rec.Queries[i], and
// repair mutates it in place. Query actions therefore encode a
// (run action, query index) reference rather than a copy, and decoding
// restores the shared pointer. Only a query whose owning run has left
// the graph (GC) encodes its record inline.
package core

import (
	"fmt"
	"net/url"
	"sort"

	"warp/internal/app"
	"warp/internal/browser"
	"warp/internal/history"
	"warp/internal/httpd"
	"warp/internal/store"
	"warp/internal/ttdb"
)

// Action payload encodings.
const (
	payloadNone        byte = 0
	payloadRun         byte = 1
	payloadQueryRef    byte = 2
	payloadQueryInline byte = 3
	payloadPatch       byte = 4
)

func encodeDeps(enc *store.Encoder, deps []history.Dep) {
	enc.Uvarint(uint64(len(deps)))
	for _, d := range deps {
		enc.String(string(d.Node))
		enc.Int(d.Time)
	}
}

func decodeDeps(dec *store.Decoder) []history.Dep {
	n := dec.Count()
	out := make([]history.Dep, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, history.Dep{Node: history.NodeID(dec.String()), Time: dec.Int()})
	}
	return out
}

func encodeStringMap(enc *store.Encoder, m map[string]string) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	enc.Uvarint(uint64(len(keys)))
	for _, k := range keys {
		enc.String(k)
		enc.String(m[k])
	}
}

func decodeStringMap(dec *store.Decoder) map[string]string {
	n := dec.Count()
	m := make(map[string]string, n)
	for i := 0; i < n; i++ {
		k := dec.String()
		m[k] = dec.String()
	}
	return m
}

func encodeURLValues(enc *store.Encoder, v url.Values) {
	keys := make([]string, 0, len(v))
	for k := range v {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	enc.Uvarint(uint64(len(keys)))
	for _, k := range keys {
		enc.String(k)
		vals := v[k]
		enc.Uvarint(uint64(len(vals)))
		for _, s := range vals {
			enc.String(s)
		}
	}
}

func decodeURLValues(dec *store.Decoder) url.Values {
	n := dec.Count()
	v := make(url.Values, n)
	for i := 0; i < n; i++ {
		k := dec.String()
		nv := dec.Count()
		vals := make([]string, 0, nv)
		for j := 0; j < nv; j++ {
			vals = append(vals, dec.String())
		}
		v[k] = vals
	}
	return v
}

func encodeRequest(enc *store.Encoder, r *httpd.Request) {
	if r == nil {
		enc.Bool(false)
		return
	}
	enc.Bool(true)
	enc.String(r.Method)
	enc.String(r.Path)
	encodeURLValues(enc, r.Query)
	encodeURLValues(enc, r.Form)
	encodeStringMap(enc, r.Cookies)
	encodeStringMap(enc, r.Headers)
	enc.String(r.ClientID)
	enc.Int(r.VisitID)
	enc.Int(r.RequestID)
}

func decodeRequest(dec *store.Decoder) *httpd.Request {
	if !dec.Bool() {
		return nil
	}
	return &httpd.Request{
		Method:    dec.String(),
		Path:      dec.String(),
		Query:     decodeURLValues(dec),
		Form:      decodeURLValues(dec),
		Cookies:   decodeStringMap(dec),
		Headers:   decodeStringMap(dec),
		ClientID:  dec.String(),
		VisitID:   dec.Int(),
		RequestID: dec.Int(),
	}
}

func encodeResponse(enc *store.Encoder, r *httpd.Response) {
	if r == nil {
		enc.Bool(false)
		return
	}
	enc.Bool(true)
	enc.Int(int64(r.Status))
	enc.String(r.Body)
	encodeStringMap(enc, r.Headers)
	encodeStringMap(enc, r.SetCookies)
	enc.Uvarint(uint64(len(r.ClearCookies)))
	for _, c := range r.ClearCookies {
		enc.String(c)
	}
}

func decodeResponse(dec *store.Decoder) *httpd.Response {
	if !dec.Bool() {
		return nil
	}
	r := &httpd.Response{
		Status:     int(dec.Int()),
		Body:       dec.String(),
		Headers:    decodeStringMap(dec),
		SetCookies: decodeStringMap(dec),
	}
	n := dec.Count()
	for i := 0; i < n; i++ {
		r.ClearCookies = append(r.ClearCookies, dec.String())
	}
	return r
}

func encodeRunRecord(enc *store.Encoder, r *app.RunRecord) {
	enc.Int(r.RunID)
	enc.Int(r.Time)
	enc.String(r.File)
	encodeRequest(enc, r.Req)
	encodeResponse(enc, r.Resp)
	enc.Uvarint(uint64(len(r.FilesLoaded)))
	for _, f := range r.FilesLoaded {
		enc.String(f)
	}
	enc.Uvarint(uint64(len(r.Queries)))
	for _, q := range r.Queries {
		ttdb.EncodeRecord(enc, q)
	}
	enc.Uvarint(uint64(len(r.NonDet)))
	for _, nd := range r.NonDet {
		enc.String(nd.Site)
		enc.String(nd.Value)
	}
	enc.Bool(r.Failed)
}

func decodeRunRecord(dec *store.Decoder) *app.RunRecord {
	r := &app.RunRecord{
		RunID: dec.Int(),
		Time:  dec.Int(),
		File:  dec.String(),
		Req:   decodeRequest(dec),
		Resp:  decodeResponse(dec),
	}
	n := dec.Count()
	for i := 0; i < n; i++ {
		r.FilesLoaded = append(r.FilesLoaded, dec.String())
	}
	n = dec.Count()
	for i := 0; i < n; i++ {
		r.Queries = append(r.Queries, ttdb.DecodeRecord(dec))
	}
	n = dec.Count()
	for i := 0; i < n; i++ {
		r.NonDet = append(r.NonDet, app.NonDetCall{Site: dec.String(), Value: dec.String()})
	}
	r.Failed = dec.Bool()
	return r
}

// encodeAction serializes one history action with its payload. g selects
// the mode: non-nil for snapshot encoding (query-to-run references are
// resolved through the graph), nil for WAL encoding at append time
// (query actions reference the owning run's next query slot, which is
// exactly this query's index — recordRun appends them in order).
func encodeAction(enc *store.Encoder, a *history.Action, g *history.Graph) {
	enc.Int(int64(a.ID))
	enc.Byte(byte(a.Kind))
	enc.Int(a.Time)
	encodeDeps(enc, a.Inputs)
	encodeDeps(enc, a.Outputs)

	switch p := a.Payload.(type) {
	case *RunPayload:
		enc.Byte(payloadRun)
		encodeRunRecord(enc, p.Rec)
		files := make([]string, 0, len(p.FileVersions))
		for f := range p.FileVersions {
			files = append(files, f)
		}
		sort.Strings(files)
		enc.Uvarint(uint64(len(files)))
		for _, f := range files {
			enc.String(f)
			enc.Int(int64(p.FileVersions[f]))
		}
		enc.Uvarint(uint64(len(p.QueryActions)))
		for _, id := range p.QueryActions {
			enc.Int(int64(id))
		}
		enc.Bool(p.Superseded.Load())
		enc.Bool(p.Repaired)
	case *QueryPayload:
		idx := -1
		if g != nil {
			// Snapshot mode: the reference is valid only if the owning
			// run is still in the graph with this payload attached.
			if ra := g.Get(p.RunAction); ra != nil {
				if rp, ok := ra.Payload.(*RunPayload); ok && rp == p.run {
					for i, qid := range rp.QueryActions {
						if qid == a.ID {
							idx = i
							break
						}
					}
				}
			}
		} else if p.run != nil {
			// WAL mode, during Append: the owning run has not yet linked
			// this action, so our slot is the next one.
			idx = len(p.run.QueryActions)
		}
		if idx >= 0 {
			enc.Byte(payloadQueryRef)
			enc.Int(int64(p.RunAction))
			enc.Uvarint(uint64(idx))
		} else {
			enc.Byte(payloadQueryInline)
			enc.Int(int64(p.RunAction))
			ttdb.EncodeRecord(enc, p.Rec)
		}
		enc.Bool(p.Superseded.Load())
		enc.Bool(p.Repaired)
	case string:
		enc.Byte(payloadPatch)
		enc.String(p)
	default:
		enc.Byte(payloadNone)
	}
}

// decodeAction rebuilds one action. Query references resolve against g,
// which must already contain the owning run (actions decode in append
// order, and runs always precede their queries). The returned
// QueryPayload, if any, still needs linking into the owning run's
// QueryActions when replaying WAL appends.
func decodeAction(dec *store.Decoder, g *history.Graph) (*history.Action, *QueryPayload, error) {
	a := &history.Action{
		ID:      history.ActionID(dec.Int()),
		Kind:    history.Kind(dec.Byte()),
		Time:    dec.Int(),
		Inputs:  decodeDeps(dec),
		Outputs: decodeDeps(dec),
	}
	var qp *QueryPayload
	switch tag := dec.Byte(); tag {
	case payloadRun:
		p := &RunPayload{Rec: decodeRunRecord(dec), FileVersions: make(map[string]int)}
		n := dec.Count()
		for i := 0; i < n; i++ {
			f := dec.String()
			p.FileVersions[f] = int(dec.Int())
		}
		n = dec.Count()
		for i := 0; i < n; i++ {
			p.QueryActions = append(p.QueryActions, history.ActionID(dec.Int()))
		}
		p.Superseded.Store(dec.Bool())
		p.Repaired = dec.Bool()
		a.Payload = p
	case payloadQueryRef:
		qp = &QueryPayload{RunAction: history.ActionID(dec.Int())}
		idx := int(dec.Uvarint())
		qp.Superseded.Store(dec.Bool())
		qp.Repaired = dec.Bool()
		if dec.Err() == nil {
			ra := g.Get(qp.RunAction)
			if ra == nil {
				return nil, nil, fmt.Errorf("core: query action %d references missing run %d", a.ID, qp.RunAction)
			}
			rp, ok := ra.Payload.(*RunPayload)
			if !ok || idx >= len(rp.Rec.Queries) {
				return nil, nil, fmt.Errorf("core: query action %d references run %d query %d out of range", a.ID, qp.RunAction, idx)
			}
			qp.Rec = rp.Rec.Queries[idx] // restore the shared pointer
			qp.run = rp
		}
		a.Payload = qp
	case payloadQueryInline:
		qp = &QueryPayload{RunAction: history.ActionID(dec.Int()), Rec: ttdb.DecodeRecord(dec)}
		qp.Superseded.Store(dec.Bool())
		qp.Repaired = dec.Bool()
		a.Payload = qp
	case payloadPatch:
		a.Payload = dec.String()
	case payloadNone:
	default:
		return nil, nil, fmt.Errorf("core: unknown action payload tag %d", tag)
	}
	if err := dec.Err(); err != nil {
		return nil, nil, err
	}
	return a, qp, nil
}

func encodeVisitLog(enc *store.Encoder, v *browser.VisitLog) {
	// The live browser grows Events/Requests in place; a background
	// (fault-fence) checkpoint can encode the shared log mid-page-load.
	v.Lock()
	defer v.Unlock()
	enc.String(v.ClientID)
	enc.Int(v.VisitID)
	enc.Int(v.ParentVisit)
	enc.Bool(v.IsFrame)
	enc.String(v.URL)
	enc.String(v.Method)
	enc.String(v.FormEncoded)
	encodeStringMap(enc, v.Cookies)
	enc.Int(v.Time)
	enc.String(v.AttackerHTML)
	enc.Uvarint(uint64(len(v.Events)))
	for _, e := range v.Events {
		enc.Byte(byte(e.Kind))
		enc.String(e.XPath)
		enc.String(e.Base)
		enc.String(e.Value)
	}
	enc.Uvarint(uint64(len(v.Requests)))
	for _, r := range v.Requests {
		enc.Int(r.RequestID)
		enc.String(r.Method)
		enc.String(r.URL)
		enc.String(r.FormEncoded)
		enc.Uvarint(r.ReqFP)
		enc.Uvarint(r.RespFP)
	}
	enc.Bool(v.Blocked)
}

func decodeVisitLog(dec *store.Decoder) *browser.VisitLog {
	v := &browser.VisitLog{
		ClientID:    dec.String(),
		VisitID:     dec.Int(),
		ParentVisit: dec.Int(),
		IsFrame:     dec.Bool(),
		URL:         dec.String(),
		Method:      dec.String(),
		FormEncoded: dec.String(),
		Cookies:     decodeStringMap(dec),
		Time:        dec.Int(),
	}
	v.AttackerHTML = dec.String()
	n := dec.Count()
	for i := 0; i < n; i++ {
		v.Events = append(v.Events, browser.Event{
			Kind:  browser.EventKind(dec.Byte()),
			XPath: dec.String(),
			Base:  dec.String(),
			Value: dec.String(),
		})
	}
	n = dec.Count()
	for i := 0; i < n; i++ {
		v.Requests = append(v.Requests, browser.RequestTrace{
			RequestID:   dec.Int(),
			Method:      dec.String(),
			URL:         dec.String(),
			FormEncoded: dec.String(),
			ReqFP:       dec.Uvarint(),
			RespFP:      dec.Uvarint(),
		})
	}
	v.Blocked = dec.Bool()
	return v
}

func encodeConflict(enc *store.Encoder, c browser.Conflict) {
	enc.Byte(byte(c.Kind))
	enc.String(c.Client)
	enc.Int(c.VisitID)
	enc.String(c.Detail)
}

func decodeConflict(dec *store.Decoder) browser.Conflict {
	return browser.Conflict{
		Kind:    browser.ConflictKind(dec.Byte()),
		Client:  dec.String(),
		VisitID: dec.Int(),
		Detail:  dec.String(),
	}
}

func encodeIntent(enc *store.Encoder, it *RepairIntent) {
	enc.Byte(byte(it.Kind))
	enc.String(it.File)
	enc.String(it.Note)
	enc.Int(it.Since)
	enc.String(it.Client)
	enc.Int(it.Visit)
	enc.Bool(it.Admin)
	enc.Bool(it.Dequeue)
	enc.String(it.Partition)
	enc.Int(it.From)
}

func decodeIntent(dec *store.Decoder) RepairIntent {
	return RepairIntent{
		Kind:      IntentKind(dec.Byte()),
		File:      dec.String(),
		Note:      dec.String(),
		Since:     dec.Int(),
		Client:    dec.String(),
		Visit:     dec.Int(),
		Admin:     dec.Bool(),
		Dequeue:   dec.Bool(),
		Partition: dec.String(),
		From:      dec.Int(),
	}
}
