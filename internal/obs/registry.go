package obs

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
)

// Registry holds named metrics for export. Registration is idempotent
// by name, so package init blocks and tests can re-request a metric
// without double-registering. Metric reads and writes never touch the
// registry lock — it guards only the name index.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Default is the process-wide registry; the package-level constructors
// register there, and Warp.Metrics / the /warp/metrics endpoint export
// it.
var Default = NewRegistry()

// Metric names follow Prometheus convention: a base name, optionally
// one {key="value"} label set baked into the registered name (e.g.
// `warp_sqldb_exec_seconds{shape="select_eq"}`). Histograms registered
// this way export as native Prometheus histograms with the label set
// merged into each series.

// Counter returns the named counter, creating and registering it on
// first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counters[name]; ok {
		return c
	}
	c := &Counter{name: name}
	r.counters[name] = c
	return c
}

// Gauge returns the named gauge, creating and registering it on first
// use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok := r.gauges[name]; ok {
		return g
	}
	g := &Gauge{name: name}
	r.gauges[name] = g
	return g
}

// Histogram returns the named histogram, creating and registering it on
// first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.hists[name]; ok {
		return h
	}
	h := &Histogram{name: name}
	r.hists[name] = h
	return h
}

// NewCounter registers (or finds) a counter in the Default registry.
func NewCounter(name string) *Counter { return Default.Counter(name) }

// NewGauge registers (or finds) a gauge in the Default registry.
func NewGauge(name string) *Gauge { return Default.Gauge(name) }

// NewHistogram registers (or finds) a histogram in the Default
// registry.
func NewHistogram(name string) *Histogram { return Default.Histogram(name) }

// CounterValue is one counter's exported state.
type CounterValue struct {
	Name  string
	Value uint64
}

// GaugeValue is one gauge's exported state.
type GaugeValue struct {
	Name  string
	Value int64
}

// HistogramValue is one histogram's exported state.
type HistogramValue struct {
	Name string
	Hist HistSnapshot
}

// Snapshot is a point-in-time copy of every metric in a registry,
// sorted by name.
type Snapshot struct {
	Counters   []CounterValue
	Gauges     []GaugeValue
	Histograms []HistogramValue
}

// Snapshot copies every registered metric.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	counters := make([]*Counter, 0, len(r.counters))
	for _, c := range r.counters {
		counters = append(counters, c)
	}
	gauges := make([]*Gauge, 0, len(r.gauges))
	for _, g := range r.gauges {
		gauges = append(gauges, g)
	}
	hists := make([]*Histogram, 0, len(r.hists))
	for _, h := range r.hists {
		hists = append(hists, h)
	}
	r.mu.Unlock()

	var s Snapshot
	for _, c := range counters {
		s.Counters = append(s.Counters, CounterValue{Name: c.name, Value: c.Value()})
	}
	for _, g := range gauges {
		s.Gauges = append(s.Gauges, GaugeValue{Name: g.name, Value: g.Value()})
	}
	for _, h := range hists {
		s.Histograms = append(s.Histograms, HistogramValue{Name: h.name, Hist: h.Snapshot()})
	}
	sort.Slice(s.Counters, func(i, j int) bool { return s.Counters[i].Name < s.Counters[j].Name })
	sort.Slice(s.Gauges, func(i, j int) bool { return s.Gauges[i].Name < s.Gauges[j].Name })
	sort.Slice(s.Histograms, func(i, j int) bool { return s.Histograms[i].Name < s.Histograms[j].Name })
	return s
}

// Counter returns the named counter's value from the snapshot (0 when
// absent).
func (s Snapshot) Counter(name string) uint64 {
	for _, c := range s.Counters {
		if c.Name == name {
			return c.Value
		}
	}
	return 0
}

// Gauge returns the named gauge's value from the snapshot (0 when
// absent).
func (s Snapshot) Gauge(name string) int64 {
	for _, g := range s.Gauges {
		if g.Name == name {
			return g.Value
		}
	}
	return 0
}

// Histogram returns the named histogram's snapshot and whether it was
// present.
func (s Snapshot) Histogram(name string) (HistSnapshot, bool) {
	for _, h := range s.Histograms {
		if h.Name == name {
			return h.Hist, true
		}
	}
	return HistSnapshot{}, false
}

// Sub returns a window view: counters and histograms become the deltas
// s − prev (metrics absent from prev pass through whole); gauges keep
// their current (instantaneous) values.
func (s Snapshot) Sub(prev Snapshot) Snapshot {
	out := Snapshot{Gauges: s.Gauges}
	for _, c := range s.Counters {
		out.Counters = append(out.Counters, CounterValue{Name: c.Name, Value: c.Value - prev.Counter(c.Name)})
	}
	for _, h := range s.Histograms {
		hs := h.Hist
		if p, ok := prev.Histogram(h.Name); ok {
			hs = hs.Sub(p)
		}
		out.Histograms = append(out.Histograms, HistogramValue{Name: h.Name, Hist: hs})
	}
	return out
}

// splitName separates a registered name into its base metric name and
// the baked-in label list (without braces): "m{a=\"b\"}" → "m", `a="b"`.
func splitName(name string) (base, labels string) {
	i := strings.IndexByte(name, '{')
	if i < 0 || !strings.HasSuffix(name, "}") {
		return name, ""
	}
	return name[:i], name[i+1 : len(name)-1]
}

// WritePrometheus writes every metric of the registry in the Prometheus
// text exposition format (version 0.0.4): counters and gauges as single
// samples, histograms as cumulative _bucket series with le labels in
// seconds plus _sum and _count.
func (r *Registry) WritePrometheus(w io.Writer) error {
	s := r.Snapshot()
	for _, c := range s.Counters {
		base, labels := splitName(c.Name)
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", base, sample(base, labels, ""), c.Value); err != nil {
			return err
		}
	}
	for _, g := range s.Gauges {
		base, labels := splitName(g.Name)
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", base, sample(base, labels, ""), g.Value); err != nil {
			return err
		}
	}
	for _, h := range s.Histograms {
		base, labels := splitName(h.Name)
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", base); err != nil {
			return err
		}
		var cum uint64
		for i, n := range h.Hist.Buckets {
			if n == 0 {
				continue
			}
			cum += n
			le := fmt.Sprintf(`le="%g"`, float64(BucketUpper(i))/1e9)
			if _, err := fmt.Fprintf(w, "%s %d\n", sample(base+"_bucket", labels, le), cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s %d\n", sample(base+"_bucket", labels, `le="+Inf"`), h.Hist.Count); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s %g\n%s %d\n",
			sample(base+"_sum", labels, ""), float64(h.Hist.Sum)/1e9,
			sample(base+"_count", labels, ""), h.Hist.Count); err != nil {
			return err
		}
	}
	return nil
}

// sample renders one series name with its merged label set.
func sample(name, labels, extra string) string {
	switch {
	case labels == "" && extra == "":
		return name
	case labels == "":
		return name + "{" + extra + "}"
	case extra == "":
		return name + "{" + labels + "}"
	default:
		return name + "{" + labels + "," + extra + "}"
	}
}

// Handler returns an http.Handler serving the registry in Prometheus
// text format — warp-server mounts it at GET /warp/metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}

// Handler serves the Default registry.
func Handler() http.Handler { return Default.Handler() }
