package core

import (
	"fmt"
	"time"

	"warp/internal/browser"
)

// Timing is the repair wall-time breakdown reported in the paper's
// Tables 7 and 8: initialization (finding affected actions), history-graph
// loading, browser re-execution ("Firefox"), standalone database query
// re-execution, application re-execution, and controller overhead.
type Timing struct {
	Init    time.Duration
	Graph   time.Duration
	Browser time.Duration
	DB      time.Duration
	App     time.Duration
	Ctrl    time.Duration
	Total   time.Duration
}

// Report summarizes one repair: what was re-executed out of what existed,
// what conflicts were queued, and where the time went.
type Report struct {
	Generation int64

	PageVisitsReplayed int
	AppRunsReexecuted  int
	QueriesReexecuted  int
	RunsCancelled      int

	TotalPageVisits int
	TotalAppRuns    int
	TotalQueries    int

	Conflicts        []browser.Conflict
	GraphNodesLoaded int
	Aborted          bool

	// RepairWorkers is the number of parallel workers the scheduler used.
	// It does not appear in String(): a repair's outcome is independent of
	// how many workers computed it.
	RepairWorkers int

	Timing Timing
}

// UsersWithConflicts counts distinct clients with at least one queued
// conflict, the metric of Tables 3 and 4.
func (r *Report) UsersWithConflicts() int {
	seen := map[string]bool{}
	for _, c := range r.Conflicts {
		seen[c.Client] = true
	}
	return len(seen)
}

// String renders the report in the paper's Table 7 row style.
func (r *Report) String() string {
	return fmt.Sprintf(
		"gen %d: visits %d/%d, runs %d/%d (+%d cancelled), queries %d/%d, conflicts %d (users %d), total %v (init %v graph %v browser %v db %v app %v ctrl %v)",
		r.Generation,
		r.PageVisitsReplayed, r.TotalPageVisits,
		r.AppRunsReexecuted, r.TotalAppRuns, r.RunsCancelled,
		r.QueriesReexecuted, r.TotalQueries,
		len(r.Conflicts), r.UsersWithConflicts(),
		r.Timing.Total.Round(time.Microsecond),
		r.Timing.Init.Round(time.Microsecond),
		r.Timing.Graph.Round(time.Microsecond),
		r.Timing.Browser.Round(time.Microsecond),
		r.Timing.DB.Round(time.Microsecond),
		r.Timing.App.Round(time.Microsecond),
		r.Timing.Ctrl.Round(time.Microsecond),
	)
}
