package workload

import (
	"strings"
	"testing"

	"warp/internal/attacks"
)

// TestConflictResolutionByCancel drives the §5.4 workflow end to end: a
// clickjacking repair queues conflicts for the victims; each victim then
// resolves their conflict by canceling the page visit, and the framed
// interaction's effects are undone for good.
func TestConflictResolutionByCancel(t *testing.T) {
	sc, _ := attacks.ByName("Clickjacking")
	res, err := Run(Config{Users: 8, Victims: 2, Seed: 17, Scenario: sc})
	if err != nil {
		t.Fatal(err)
	}
	w := res.Env.W
	if _, err := sc.Repair(res.Env); err != nil {
		t.Fatal(err)
	}
	victims := res.Env.Victims
	for _, v := range victims {
		conflicts := w.ConflictsFor(v.B.ClientID)
		if len(conflicts) == 0 {
			t.Fatalf("no conflict queued for %s", v.Name)
		}
		// The user cancels the conflicted page visit (the only resolution
		// the paper's prototype UI offers, §6).
		if _, err := w.ResolveConflictByCancel(v.B.ClientID, conflicts[0].VisitID); err != nil {
			t.Fatalf("%s: resolve: %v", v.Name, err)
		}
		if len(w.ConflictsFor(v.B.ClientID)) >= len(conflicts) {
			t.Fatalf("%s: conflict not dequeued", v.Name)
		}
	}
	// Resolving an unknown conflict is rejected.
	if _, err := w.ResolveConflictByCancel("nobody", 1); err == nil {
		t.Fatal("unknown conflict resolution must fail")
	}
	// The clickjacked edit stays undone.
	team, _ := res.Env.App.PageContent(res.Env.TargetPage)
	if strings.Contains(team, "mooo") {
		t.Fatalf("attack residue after resolution: %q", team)
	}
}

// TestCookieInvalidationOnNextContact verifies §5.3's cookie invalidation:
// after a CSRF repair diverges a victim's replayed cookie from the one in
// their real browser, the client's next request gets the stale cookie
// cleared.
func TestCookieInvalidationOnNextContact(t *testing.T) {
	sc, _ := attacks.ByName("CSRF")
	res, err := Run(Config{Users: 6, Victims: 1, Seed: 23, Scenario: sc})
	if err != nil {
		t.Fatal(err)
	}
	w := res.Env.W
	if _, err := sc.Repair(res.Env); err != nil {
		t.Fatal(err)
	}
	victim := res.Env.Victims[0]
	if !w.PendingCookieInvalidation(victim.B.ClientID) {
		t.Fatal("victim's diverged cookie not queued for invalidation")
	}
	staleSid := victim.B.Cookies()["sid"]
	if staleSid == "" {
		t.Fatal("victim should still hold the stale cookie")
	}
	// The next contact clears it: the server both ignores the stale cookie
	// and instructs the browser to delete it.
	victim.B.Open("/index.php?title=Main")
	if got := victim.B.Cookies()["sid"]; got == staleSid {
		t.Fatalf("stale cookie survived next contact: %q", got)
	}
	if w.PendingCookieInvalidation(victim.B.ClientID) {
		t.Fatal("invalidation should be consumed")
	}
}
