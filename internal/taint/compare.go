package taint

import (
	"fmt"

	"warp/internal/app"
	"warp/internal/browser"
	"warp/internal/core"
	"warp/internal/history"
	"warp/internal/webapp/blog"
	"warp/internal/webapp/gallery"
)

// Bug identifies one of the four §8.4 corruption bugs.
type Bug string

// The four bugs of Table 5.
const (
	BugLostVotes    Bug = "Drupal – lost voting info"
	BugLostComments Bug = "Drupal – lost comments"
	BugRemovePerms  Bug = "Gallery2 – removing perms"
	BugResizeImages Bug = "Gallery2 – resizing images"
)

// Bugs lists the Table 5 rows in order.
func Bugs() []Bug {
	return []Bug{BugLostVotes, BugLostComments, BugRemovePerms, BugResizeImages}
}

// PolicyResult is the outcome of one baseline policy on one bug.
type PolicyResult struct {
	Policy         Policy
	FalsePositives int
	FalseNegatives int
}

// Comparison is one Table 5 row: the taint baseline under its policies
// versus WARP.
type Comparison struct {
	Bug       Bug
	Corrupted int // ground-truth corrupted rows

	Baseline []PolicyResult
	// BaselineNeedsInput is always true: the administrator must identify
	// the buggy request (and supply white-lists).
	BaselineNeedsInput bool

	// WARP's results: rows left different from the bug-free oracle after
	// retroactive patching (want 0), and conflicts requiring user input
	// (want 0).
	WARPFalsePositives int
	WARPConflicts      int
	WARPNeedsInput     bool
}

// bugSpec describes one comparison scenario: how to deploy the
// application, drive the workload, and patch the bug.
type bugSpec struct {
	bug       Bug
	file      string   // buggy source file
	tables    []string // tables to diff, with their row ID columns
	rowIDCols []string
	whitelist map[string]bool

	deploy func(seed int64, fixed bool) (*core.Warp, app.Version, error)
	// workload drives the full activity. It returns the run action of the
	// bug-triggering request (identified by URL path).
	workload func(w *core.Warp, scale int) error
	bugPath  string // request path that triggers the bug
}

// RunComparison reproduces one Table 5 row at the given workload scale
// (number of users; the bench default is 100).
func RunComparison(bug Bug, scale int) (*Comparison, error) {
	if scale < 6 {
		scale = 6
	}
	spec, err := specFor(bug)
	if err != nil {
		return nil, err
	}

	// Twin deployments: buggy and oracle (bug fixed from the start).
	buggy, patch, err := spec.deploy(41, false)
	if err != nil {
		return nil, err
	}
	oracle, _, err := spec.deploy(41, true)
	if err != nil {
		return nil, err
	}
	if err := spec.workload(buggy, scale); err != nil {
		return nil, err
	}
	if err := spec.workload(oracle, scale); err != nil {
		return nil, err
	}

	// Ground truth: rows that differ between the buggy and bug-free runs.
	corrupted := make(map[RowKey]bool)
	for i, table := range spec.tables {
		diff, err := DiffRows(buggy.DB, oracle.DB, table, spec.rowIDCols[i])
		if err != nil {
			return nil, err
		}
		for _, k := range diff {
			corrupted[k] = true
		}
	}

	cmp := &Comparison{Bug: bug, Corrupted: len(corrupted), BaselineNeedsInput: true}

	// The baseline's administrator identifies the bug-triggering request.
	buggyRun, err := findRunByPath(buggy, spec.bugPath)
	if err != nil {
		return nil, err
	}
	for _, pol := range []Policy{PolicyDirect, PolicyFlow, PolicyFlowWhitelist} {
		an, err := Analyze(buggy, buggyRun, pol, spec.whitelist, corrupted)
		if err != nil {
			return nil, err
		}
		cmp.Baseline = append(cmp.Baseline, PolicyResult{
			Policy:         pol,
			FalsePositives: an.FalsePositives,
			FalseNegatives: an.FalseNegatives,
		})
	}

	// WARP: retroactively patch the buggy file and compare against the
	// oracle.
	rep, err := buggy.RetroPatch(spec.file, patch)
	if err != nil {
		return nil, err
	}
	cmp.WARPConflicts = len(rep.Conflicts)
	for i, table := range spec.tables {
		diff, err := DiffRows(buggy.DB, oracle.DB, table, spec.rowIDCols[i])
		if err != nil {
			return nil, err
		}
		cmp.WARPFalsePositives += len(diff)
	}
	cmp.WARPNeedsInput = cmp.WARPConflicts > 0
	return cmp, nil
}

// findRunByPath locates the (first) application run serving a path.
func findRunByPath(w *core.Warp, path string) (history.ActionID, error) {
	for _, act := range w.Graph.ByKind(history.KindAppRun) {
		payload := act.Payload.(*core.RunPayload)
		if payload.Rec.Req.Path == path {
			return act.ID, nil
		}
	}
	return 0, fmt.Errorf("taint: no run for path %s", path)
}

func specFor(bug Bug) (*bugSpec, error) {
	switch bug {
	case BugLostVotes:
		return &bugSpec{
			bug:       bug,
			file:      "editpost.php",
			bugPath:   "/editpost.php",
			tables:    []string{"posts", "votes", "comments", "digests"},
			rowIDCols: []string{"node_id", "", "", "node_id"},
			whitelist: map[string]bool{"posts": true},
			deploy: func(seed int64, fixed bool) (*core.Warp, app.Version, error) {
				w := core.New(core.Config{Seed: seed})
				a, err := blog.Install(w)
				if err != nil {
					return nil, app.Version{}, err
				}
				patch := a.EditpostFixed()
				if fixed {
					if err := w.Runtime.Patch("editpost.php", patch); err != nil {
						return nil, app.Version{}, err
					}
				}
				if err := seedBlog(a); err != nil {
					return nil, app.Version{}, err
				}
				return w, patch, nil
			},
			workload: func(w *core.Warp, scale int) error {
				return blogWorkload(w, scale, "/editpost.php?id=1&body=edited+body")
			},
		}, nil
	case BugLostComments:
		return &bugSpec{
			bug:       bug,
			file:      "movepost.php",
			bugPath:   "/movepost.php",
			tables:    []string{"posts", "votes", "comments", "digests"},
			rowIDCols: []string{"node_id", "", "", "node_id"},
			whitelist: map[string]bool{"posts": true},
			deploy: func(seed int64, fixed bool) (*core.Warp, app.Version, error) {
				w := core.New(core.Config{Seed: seed})
				a, err := blog.Install(w)
				if err != nil {
					return nil, app.Version{}, err
				}
				patch := a.MovepostFixed()
				if fixed {
					if err := w.Runtime.Patch("movepost.php", patch); err != nil {
						return nil, app.Version{}, err
					}
				}
				if err := seedBlog(a); err != nil {
					return nil, app.Version{}, err
				}
				return w, patch, nil
			},
			workload: func(w *core.Warp, scale int) error {
				return blogWorkload(w, scale, "/movepost.php?id=1&category=archive")
			},
		}, nil
	case BugRemovePerms:
		return &bugSpec{
			bug:       bug,
			file:      "movephoto.php",
			bugPath:   "/movephoto.php",
			tables:    []string{"photos", "perms"},
			rowIDCols: []string{"photo_id", ""},
			whitelist: map[string]bool{"photos": true},
			deploy:    deployGallery("movephoto.php"),
			workload: func(w *core.Warp, scale int) error {
				return galleryWorkload(w, scale, "/movephoto.php?id=1&album=2")
			},
		}, nil
	case BugResizeImages:
		return &bugSpec{
			bug:       bug,
			file:      "resize.php",
			bugPath:   "/resize.php",
			tables:    []string{"photos", "perms"},
			rowIDCols: []string{"photo_id", ""},
			whitelist: map[string]bool{"photos": true},
			deploy:    deployGallery("resize.php"),
			workload: func(w *core.Warp, scale int) error {
				return galleryWorkload(w, scale, "/resize.php?id=1")
			},
		}, nil
	default:
		return nil, fmt.Errorf("taint: unknown bug %q", bug)
	}
}

func deployGallery(file string) func(seed int64, fixed bool) (*core.Warp, app.Version, error) {
	return func(seed int64, fixed bool) (*core.Warp, app.Version, error) {
		w := core.New(core.Config{Seed: seed})
		a, err := gallery.Install(w)
		if err != nil {
			return nil, app.Version{}, err
		}
		var patch app.Version
		if file == "movephoto.php" {
			patch = a.MovephotoFixed()
		} else {
			patch = a.ResizeFixed()
		}
		if fixed {
			if err := w.Runtime.Patch(file, patch); err != nil {
				return nil, app.Version{}, err
			}
		}
		if err := a.CreateAlbum(1, "Holiday"); err != nil {
			return nil, app.Version{}, err
		}
		if err := a.CreateAlbum(2, "Archive"); err != nil {
			return nil, app.Version{}, err
		}
		for i := int64(1); i <= 5; i++ {
			if err := a.CreatePhoto(i, 1, fmt.Sprintf("photo%d", i), fmt.Sprintf("IMAGEDATA-%d", i)); err != nil {
				return nil, app.Version{}, err
			}
		}
		return w, patch, nil
	}
}

func seedBlog(a *blog.App) error {
	for i := int64(1); i <= 5; i++ {
		if err := a.CreatePost(i, fmt.Sprintf("Post %d", i), "original body"); err != nil {
			return err
		}
	}
	return nil
}

// blogWorkload: half the users vote and comment before the bug, the bug
// fires, the other half keep voting and commenting on the affected post,
// and the stats digest is recomputed (deriving corrupted data — the false-
// negative trap for narrow policies).
func blogWorkload(w *core.Warp, scale int, bugURL string) error {
	users := make([]*browser.Browser, scale)
	for i := range users {
		users[i] = w.NewBrowser()
	}
	half := scale / 2
	for i := 0; i < half; i++ {
		u := fmt.Sprintf("user%d", i)
		post := 1 + i%5
		open(users[i], fmt.Sprintf("/vote.php?id=1&u=%s&val=1", u))
		open(users[i], fmt.Sprintf("/comment.php?id=%d&u=%s&text=nice+post", post, u))
	}
	// The administrator (or a user) triggers the bug.
	open(users[0], bugURL)
	// Post-bug activity on the affected post: these writes are what coarse
	// taint policies flag for rollback (false positives).
	for i := half; i < scale; i++ {
		u := fmt.Sprintf("user%d", i)
		open(users[i], fmt.Sprintf("/comment.php?id=1&u=%s&text=late+comment", u))
		open(users[i], fmt.Sprintf("/vote.php?id=1&u=%s&val=1", u))
	}
	// A stats digest derives data from the (now corrupted) counts.
	open(users[0], "/digest.php?id=1")
	return nil
}

// galleryWorkload: users are granted access and view photos; the bug
// fires; the administrator re-grants and users keep viewing.
func galleryWorkload(w *core.Warp, scale int, bugURL string) error {
	users := make([]*browser.Browser, scale)
	for i := range users {
		users[i] = w.NewBrowser()
	}
	half := scale / 2
	for i := 0; i < half; i++ {
		u := fmt.Sprintf("user%d", i)
		open(users[i], fmt.Sprintf("/grant.php?id=1&user=%s", u))
		open(users[i], fmt.Sprintf("/photo.php?id=1&u=%s", u))
	}
	open(users[0], bugURL)
	// Post-bug: the administrator re-grants users on the affected photo
	// (after the perms bug) and users keep viewing.
	for i := half; i < scale; i++ {
		u := fmt.Sprintf("user%d", i)
		open(users[i], fmt.Sprintf("/grant.php?id=1&user=%s", u))
		open(users[i], fmt.Sprintf("/photo.php?id=1&u=%s", u))
	}
	return nil
}

// open drives one GET page visit.
func open(b *browser.Browser, url string) {
	b.Open(url)
}
