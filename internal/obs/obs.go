// Package obs is WARP's observability substrate: lock-cheap atomic
// counters and gauges, fixed-bucket latency histograms with mergeable
// snapshots and quantile extraction, a package-level metric registry
// with Prometheus text exposition, and a span-style trace recorder for
// multi-phase operations (repair). It depends only on the standard
// library and is safe for concurrent use everywhere.
//
// # Cost model
//
// The instrumented layers (sqldb, ttdb, store, core) follow one rule so
// the normal-operation fast path keeps its allocation budget and its
// ns/op within a few percent of uninstrumented:
//
//   - counters and gauges update unconditionally: a single uncontended
//     atomic add, a few nanoseconds, never an allocation;
//   - anything that needs a clock — latency histograms, slow-operation
//     logging, trace spans — is gated on Enabled() at the call site, so
//     a deployment that never calls SetEnabled(true) pays one atomic
//     load per site and no time.Now calls.
//
// Histogram.Observe itself is three atomic adds and never allocates, so
// enabling observability is cheap enough to leave on in production;
// cmd/warp-server and cmd/warp-bench enable it at startup, and
// BenchmarkInstrumentedExec holds the overhead bound in CI.
//
// See docs/observability.md for the metric inventory.
package obs

import "sync/atomic"

// enabled gates the timing-dependent instrumentation sites.
var enabled atomic.Bool

// SetEnabled turns timed instrumentation (latency histograms, trace
// spans, slow-operation checks) on or off process-wide. Counters and
// gauges record regardless.
func SetEnabled(on bool) { enabled.Store(on) }

// Enabled reports whether timed instrumentation is on.
func Enabled() bool { return enabled.Load() }

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	name string
	v    atomic.Uint64
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Name returns the counter's registered name.
func (c *Counter) Name() string { return c.name }

// Gauge is an instantaneous atomic value (it can go up and down).
type Gauge struct {
	name string
	v    atomic.Int64
}

// Set replaces the gauge's value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add moves the gauge by delta (negative to decrease).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Name returns the gauge's registered name.
func (g *Gauge) Name() string { return g.name }
