package ttdb

import (
	"fmt"

	"warp/internal/sqldb"
)

// Exec parses and executes one query under normal execution: at the
// current logical time, in the current generation, with full versioning
// and dependency recording. The returned Record is what the caller (the
// application repair manager) stores in the action history graph.
// Parsing goes through the statement cache, so a repeated query form is
// parsed once and its canonical SQL string (Record.SQL) is built once.
func (db *DB) Exec(src string, params ...sqldb.Value) (*sqldb.Result, *Record, error) {
	cs, err := db.stmts.Get(src)
	if err != nil {
		return nil, nil, err
	}
	return db.execStmt(cs.Stmt, cs, params)
}

// ExecStmt executes a parsed statement under normal execution. Statements
// on disjoint partition scopes — different tables, or disjoint lock-column
// keys of one table — run in parallel; statements on overlapping scopes
// serialize, with the timestamp assigned inside the scope so version
// intervals of any one partition never interleave.
func (db *DB) ExecStmt(stmt sqldb.Statement, params []sqldb.Value) (*sqldb.Result, *Record, error) {
	return db.execStmt(stmt, nil, params)
}

// execStmt is the shared normal-execution path. cs is the statement's
// cached handle (canonical SQL + rewrite cache), or nil for statements
// that never passed through the cache.
func (db *DB) execStmt(stmt sqldb.Statement, cs *sqldb.CachedStmt, params []sqldb.Value) (*sqldb.Result, *Record, error) {
	if gate := db.writeGate.Load(); gate != nil {
		if _, isRead := stmt.(*sqldb.Select); !isRead {
			if err := (*gate)(); err != nil {
				return nil, nil, err
			}
		}
	}
	m, sc, unlock, err := db.lockFor(stmt, params)
	if err != nil {
		return nil, nil, err
	}
	defer unlock()
	t := db.clock.Tick()
	res, rec, err := db.execAt(stmt, cs, params, t, db.currentGen.Load(), nil, m, sc)
	// Emit the committed mutation while the statement's scope is still
	// held, so the observer sees per-partition events in execution order.
	// Reads are not emitted (they change nothing), and neither are failed
	// writes (their only trace is the record the caller logs).
	if err == nil && rec != nil && rec.Kind != KindRead && db.obs != nil {
		db.obs.RecordApplied(rec)
	}
	return res, rec, err
}

// lockFor acquires the locks a statement needs: every table's whole
// scope for DDL, the target table's derived partition scope for DML,
// nothing for table-less selects. It returns the target table's meta
// (nil for DDL / table-less statements), the scope held, and the
// release function.
func (db *DB) lockFor(stmt sqldb.Statement, params []sqldb.Value) (*tableMeta, lockScope, func(), error) {
	var table string
	switch s := stmt.(type) {
	case *sqldb.CreateTable, *sqldb.CreateIndex, *sqldb.AlterTableAdd, *sqldb.DropTable:
		metas := db.lockAll()
		return nil, wholeScope(), func() { db.unlockAll(metas) }, nil
	case *sqldb.Select:
		if s.Table == "" {
			return nil, lockScope{}, func() {}, nil
		}
		table = s.Table
	case *sqldb.Insert:
		table = s.Table
	case *sqldb.Update:
		table = s.Table
	case *sqldb.Delete:
		table = s.Table
	default:
		return nil, lockScope{}, nil, fmt.Errorf("ttdb: unsupported statement %T", stmt)
	}
	m, err := db.meta(table)
	if err != nil {
		return nil, lockScope{}, nil, err
	}
	sc := m.scopeForStmt(stmt, params)
	if db.obs != nil && isWriteStmt(stmt) {
		// A durable deployment logs every normal-execution write as a WAL
		// record, and replay rebuilds state by re-executing those records
		// serially in log order — so per-table record order must equal
		// execution order, which only holds if logged writes on one table
		// do not interleave. Logged writes therefore take the whole-table
		// scope; reads keep partition scopes, and repair-generation
		// re-execution (made durable by its commit checkpoint, not by
		// records) keeps partition scopes too — the concurrency the
		// partition lock manager exists for.
		sc = wholeScope()
	}
	sc = db.maybeCoalesce(m, m.effectiveScope(db, sc))
	m.locks.lock(sc)
	return m, sc, func() { m.locks.unlock(sc) }, nil
}

// isWriteStmt reports whether a statement mutates table contents.
func isWriteStmt(stmt sqldb.Statement) bool {
	switch stmt.(type) {
	case *sqldb.Insert, *sqldb.Update, *sqldb.Delete:
		return true
	}
	return false
}

// scopeForStmt derives a statement's partition lock scope from static
// analysis. The fallback for anything the analysis cannot bound — no
// usable conjunct over the lock column, a non-constant value, a SET of
// the lock column itself — is the whole table, the same conservative
// rule the paper's partition extraction uses (§4.1).
func (m *tableMeta) scopeForStmt(stmt sqldb.Statement, params []sqldb.Value) lockScope {
	if m.lockCol == "" {
		return wholeScope()
	}
	switch s := stmt.(type) {
	case *sqldb.Select:
		return m.scopeFromWhere(s.Where, params)
	case *sqldb.Insert:
		cols := s.Columns
		if len(cols) == 0 {
			cols = m.userCols
		}
		var keys []string
		for _, row := range s.Rows {
			found := false
			for i, c := range cols {
				if c != m.lockCol || i >= len(row) {
					continue
				}
				if v, ok := constValueOf(row[i], params); ok {
					keys = append(keys, v.Key())
					found = true
				}
			}
			if !found {
				return wholeScope()
			}
		}
		return keyScope(keys)
	case *sqldb.Update:
		for _, a := range s.Set {
			if a.Column == m.lockCol {
				// Rewriting the lock column moves rows across partitions;
				// only the whole-table scope covers both sides.
				return wholeScope()
			}
		}
		return m.scopeFromWhere(s.Where, params)
	case *sqldb.Delete:
		return m.scopeFromWhere(s.Where, params)
	}
	return wholeScope()
}

// scopeFromWhere bounds a WHERE clause to lock-column keys: top-level
// AND-conjuncts of the form `lockCol = const` or `lockCol IN (consts)`.
// Anything else is unbounded.
func (m *tableMeta) scopeFromWhere(where sqldb.Expr, params []sqldb.Value) lockScope {
	if where == nil {
		return wholeScope()
	}
	var keys []string
	bounded := false
	collectConjuncts(where, func(e sqldb.Expr) {
		switch e := e.(type) {
		case *sqldb.BinaryExpr:
			if e.Op != sqldb.OpEq {
				return
			}
			col, v, ok := constEqParts(e, params)
			if ok && col == m.lockCol {
				keys = append(keys, v.Key())
				bounded = true
			}
		case *sqldb.InExpr:
			if e.Not {
				return
			}
			col, ok := e.Expr.(*sqldb.ColumnRef)
			if !ok || col.Name != m.lockCol {
				return
			}
			var inKeys []string
			for _, item := range e.List {
				v, ok := constValueOf(item, params)
				if !ok {
					return // non-constant member: cannot bound
				}
				inKeys = append(inKeys, v.Key())
			}
			keys = append(keys, inKeys...)
			bounded = true
		}
	})
	if !bounded {
		return wholeScope()
	}
	return keyScope(keys)
}

// markDirtyStmt marks the shards a statement can touch, derived from
// the statement's own partition analysis. This is deliberately
// independent of the lock scope held: a logged write holds the whole
// table for WAL ordering (lockFor) but still dirties only its own
// partitions' shards, so checkpoints stay proportional to the write
// set.
func (db *DB) markDirtyStmt(m *tableMeta, stmt sqldb.Statement, params []sqldb.Value) {
	db.markDirtyScope(m, m.effectiveScope(db, m.scopeForStmt(stmt, params)))
}

// execAt dispatches a statement at an explicit time and generation. The
// caller holds the locks lockFor would acquire; m is the target table's
// meta for DML statements and sc the scope held. cs is the statement's
// cached handle: its canonical SQL becomes Record.SQL without a
// re-stringify, and its rewrite cache serves the select fast path; nil
// falls back to rendering and cloning per execution. reuse carries the
// original record during repair re-execution, or nil. Every non-read
// case marks its statement's shards dirty for the incremental
// checkpointer — before executing, so even a write that fails partway
// can only over-mark, never leave a mutated shard clean.
func (db *DB) execAt(stmt sqldb.Statement, cs *sqldb.CachedStmt, params []sqldb.Value, t, gen int64, reuse *Record, m *tableMeta, sc lockScope) (*sqldb.Result, *Record, error) {
	var canonical string
	if cs != nil {
		canonical = cs.Canonical()
	} else {
		canonical = stmt.String()
	}
	rec := &Record{SQL: canonical, Params: params, Time: t, Gen: gen}
	switch s := stmt.(type) {
	case *sqldb.CreateTable:
		rec.Kind = KindDDL
		rec.Table = s.Table
		db.markDirtyWhole(s.Table)
		if err := db.createTable(s); err != nil {
			return nil, nil, err
		}
		rec.Result = &sqldb.Result{}
		return rec.Result, rec, nil
	case *sqldb.CreateIndex:
		rec.Kind = KindDDL
		rec.Table = s.Table
		db.markDirtyWhole(s.Table)
		res, err := db.raw.ExecStmt(s, params)
		if err != nil {
			return nil, nil, err
		}
		rec.Result = res
		return res, rec, nil
	case *sqldb.AlterTableAdd:
		rec.Kind = KindDDL
		rec.Table = s.Table
		db.markDirtyWhole(s.Table)
		tm, err := db.meta(s.Table)
		if err != nil {
			return nil, nil, err
		}
		res, err := db.raw.ExecStmt(s, params)
		if err != nil {
			return nil, nil, err
		}
		tm.userCols = append(tm.userCols, s.Column.Name)
		rec.Result = res
		return res, rec, nil
	case *sqldb.DropTable:
		rec.Kind = KindDDL
		rec.Table = s.Table
		db.markDirtyWhole(s.Table)
		res, err := db.raw.ExecStmt(s, params)
		if err != nil {
			return nil, nil, err
		}
		db.tablesMu.Lock()
		delete(db.tables, s.Table)
		db.tablesMu.Unlock()
		rec.Result = res
		return res, rec, nil
	case *sqldb.Select:
		return db.execSelect(s, cs, params, t, gen, rec, m)
	case *sqldb.Insert:
		db.markDirtyStmt(m, s, params)
		return db.execInsert(s, params, t, gen, rec, reuse, m)
	case *sqldb.Update:
		db.markDirtyStmt(m, s, params)
		return db.execUpdate(s, cs, params, t, gen, rec, m)
	case *sqldb.Delete:
		db.markDirtyStmt(m, s, params)
		return db.execDelete(s, cs, params, t, gen, rec, m)
	default:
		return nil, nil, fmt.Errorf("ttdb: unsupported statement %T", stmt)
	}
}

// physicalColumns returns user columns plus WARP bookkeeping columns.
func (db *DB) physicalColumns(m *tableMeta) []string {
	return append(append([]string{}, m.userCols...), m.metaColumns()...)
}

// selectPhysical reads full physical rows matching where, in scan order.
func (db *DB) selectPhysical(m *tableMeta, where sqldb.Expr, params []sqldb.Value) (*sqldb.Result, error) {
	return db.raw.ExecStmt(db.physicalSelect(m, where), params)
}

// physicalSelect builds the statement selectPhysical executes: full
// physical rows matching where, in scan order.
func (db *DB) physicalSelect(m *tableMeta, where sqldb.Expr) *sqldb.Select {
	cols := db.physicalColumns(m)
	items := make([]sqldb.SelectItem, len(cols))
	for i, c := range cols {
		items[i] = sqldb.SelectItem{Expr: sqldb.Col(c)}
	}
	return &sqldb.Select{Items: items, Table: m.name, Where: where}
}

func (db *DB) execSelect(s *sqldb.Select, cs *sqldb.CachedStmt, params []sqldb.Value, t, gen int64, rec *Record, m *tableMeta) (*sqldb.Result, *Record, error) {
	rec.Kind = KindRead
	if s.Table == "" {
		var res *sqldb.Result
		var err error
		if cs != nil {
			res, err = db.raw.ExecCached(cs, params)
		} else {
			res, err = db.raw.ExecStmt(s, params)
		}
		if err != nil {
			return nil, nil, err
		}
		rec.Result = res
		return res, rec, nil
	}
	rec.Table = s.Table
	// Fast path: a cached handle executes its cached parameterized
	// augmentation — no clone, no re-derived WHERE, and the raw engine
	// reuses the compiled plan across executions.
	if cs != nil {
		if a := db.augSelectFor(m, s, cs); a != nil && len(params) == a.nStatic {
			res, err := db.raw.ExecCached(a.handle, extParams(params, a.nStatic, t, gen))
			if err != nil {
				return nil, nil, err
			}
			rec.ReadPartitions = m.readPartitions(s.Where, params)
			rec.Result = res
			return res, rec, nil
		}
	}
	aug := s.Clone().(*sqldb.Select)
	expandStars(m, aug)
	aug.Where = sqldb.And(aug.Where, liveWhere(t, gen))
	res, err := db.raw.ExecStmt(aug, params)
	if err != nil {
		return nil, nil, err
	}
	rec.ReadPartitions = m.readPartitions(s.Where, params)
	rec.Result = res
	return res, rec, nil
}

// checkWritableColumns rejects application writes to reserved or row-ID
// columns: the paper requires row IDs to be assigned once and never
// overwritten (§4.1).
func (db *DB) checkWritableColumns(m *tableMeta, cols []string, isInsert bool) error {
	for _, c := range cols {
		switch c {
		case ColRowID, ColStartTime, ColEndTime, ColStartGen, ColEndGen:
			return fmt.Errorf("ttdb: table %s: column %s is reserved", m.name, c)
		}
		if !isInsert && c == m.rowIDCol {
			return fmt.Errorf("ttdb: table %s: row ID column %s must not be updated", m.name, c)
		}
	}
	return nil
}

func (db *DB) execInsert(s *sqldb.Insert, params []sqldb.Value, t, gen int64, rec *Record, reuse *Record, m *tableMeta) (*sqldb.Result, *Record, error) {
	rec.Kind = KindInsert
	rec.Table = s.Table
	cols := s.Columns
	if len(cols) == 0 {
		cols = m.userCols
	}
	if err := db.checkWritableColumns(m, cols, true); err != nil {
		return nil, nil, err
	}

	aug := s.Clone().(*sqldb.Insert)
	aug.Columns = append(append([]string{}, cols...), m.metaColumns()...)
	var reuseIDs []sqldb.Value
	if reuse != nil {
		reuseIDs = reuse.WriteRowIDs
	}
	for i := range aug.Rows {
		if len(aug.Rows[i]) != len(cols) {
			return nil, nil, fmt.Errorf("ttdb: table %s: %d values for %d columns", s.Table, len(aug.Rows[i]), len(cols))
		}
		if m.synthetic {
			// Reuse the originally assigned row IDs during repair so row
			// identity is stable across re-execution. The allocator is
			// shared by every partition of the table, so it is touched
			// only under the bookkeeping latch.
			m.mu.Lock()
			var rid int64
			if i < len(reuseIDs) {
				rid = reuseIDs[i].AsInt()
				// Keep the allocator ahead of every reused ID, so rows
				// inserted after a replayed or re-executed insert never
				// collide with it (recovery replays reuse all IDs).
				if rid >= m.nextRowID {
					m.nextRowID = rid + 1
				}
			} else {
				rid = m.nextRowID
				m.nextRowID++
			}
			m.mu.Unlock()
			aug.Rows[i] = append(aug.Rows[i], sqldb.Lit(sqldb.Int(rid)))
		}
		aug.Rows[i] = append(aug.Rows[i],
			sqldb.Lit(sqldb.Int(t)), sqldb.Lit(sqldb.Int(Infinity)),
			sqldb.Lit(sqldb.Int(gen)), sqldb.Lit(sqldb.Int(Infinity)))
	}
	nApp := len(s.Returning)
	aug.Returning = returningWithMeta(m, s.Returning)
	res, err := db.raw.ExecStmt(aug, params)
	if err != nil {
		if sqldb.IsUniqueViolation(err) {
			// A failed INSERT is still a recorded outcome: repair watches
			// for success/failure changes (§6).
			rec.ErrText = err.Error()
			rec.ReadPartitions = db.insertPartitionsFromRows(m, cols, aug.Rows, params)
			return nil, rec, err
		}
		return nil, nil, err
	}
	db.fillWriteInfo(m, rec, res, nApp)
	// An INSERT "reads" the partitions it lands in: uniqueness success
	// depends on them (§6), so repair must re-check inserts in dirty
	// partitions.
	rec.ReadPartitions = rec.WritePartitions
	rec.Result = stripResult(res, s.Returning, nApp, res.Affected)
	return rec.Result, rec, nil
}

// insertPartitionsFromRows computes partitions for INSERT rows from the
// statement itself, used when the insert failed and no RETURNING data
// exists.
func (db *DB) insertPartitionsFromRows(m *tableMeta, cols []string, rows [][]sqldb.Expr, params []sqldb.Value) []Partition {
	set := NewPartitionSet()
	for _, row := range rows {
		byCol := make(map[string]sqldb.Value)
		for i, c := range cols {
			if i < len(row) {
				if v, ok := constValueOf(row[i], params); ok {
					byCol[c] = v
				}
			}
		}
		if len(m.partCols) == 0 {
			set.Add(WholeTable(m.name))
			continue
		}
		for col := range m.partCols {
			v, ok := byCol[col]
			if !ok {
				set.Add(WholeTable(m.name))
				continue
			}
			set.Add(Partition{Table: m.name, Column: col, Key: v.Key()})
		}
	}
	return set.Slice()
}

// fillWriteInfo extracts row IDs and partitions from a write's RETURNING
// data and indexes the version events in the per-partition index. The
// bookkeeping columns start at index nApp.
func (db *DB) fillWriteInfo(m *tableMeta, rec *Record, res *sqldb.Result, nApp int) {
	set := NewPartitionSet()
	for _, row := range res.Rows {
		rec.WriteRowIDs = append(rec.WriteRowIDs, row[nApp])
		if len(m.partCols) == 0 {
			set.Add(WholeTable(m.name))
			m.indexVersionEvent([]Partition{WholeTable(m.name)}, row[nApp], rec.Time)
			continue
		}
		var rowParts []Partition
		for i, col := range res.Columns[nApp+1:] {
			p := Partition{Table: m.name, Column: col, Key: row[nApp+1+i].Key()}
			set.Add(p)
			rowParts = append(rowParts, p)
		}
		m.indexVersionEvent(rowParts, row[nApp], rec.Time)
	}
	rec.WritePartitions = append(rec.WritePartitions, set.Slice()...)
}

// stripResult hides WARP's RETURNING additions from the application.
func stripResult(res *sqldb.Result, appReturning []string, nApp int, affected int) *sqldb.Result {
	out := &sqldb.Result{Affected: affected}
	if nApp == 0 {
		return out
	}
	out.Columns = append(out.Columns, appReturning...)
	for _, row := range res.Rows {
		out.Rows = append(out.Rows, row[:nApp])
	}
	return out
}

func (db *DB) execUpdate(s *sqldb.Update, cs *sqldb.CachedStmt, params []sqldb.Value, t, gen int64, rec *Record, m *tableMeta) (*sqldb.Result, *Record, error) {
	rec.Kind = KindUpdate
	rec.Table = s.Table
	setCols := make([]string, len(s.Set))
	for i, a := range s.Set {
		setCols[i] = a.Column
	}
	if err := db.checkWritableColumns(m, setCols, false); err != nil {
		return nil, nil, err
	}
	rec.ReadPartitions = m.readPartitions(s.Where, params)

	runSel, runUpd := db.updatePhases(s, cs, params, t, gen, m)

	// Phase 1: capture the old versions of every matched row. The result
	// is consumed within this call (partition recording copies values,
	// phase 3 re-inserts them), so its pooled row storage is released on
	// every exit path.
	oldRows, err := runSel()
	if err != nil {
		return nil, nil, err
	}
	defer sqldb.PutResult(oldRows)
	if len(oldRows.Rows) == 0 {
		rec.Result = &sqldb.Result{Affected: 0, Columns: append([]string{}, s.Returning...)}
		return rec.Result, rec, nil
	}
	db.recordOldPartitions(m, rec, oldRows)
	db.capturePreImage(m, s, rec, oldRows)

	// Phase 2: update the live versions in place, bumping start_time.
	nApp := len(s.Returning)
	res, err := runUpd()
	if err != nil {
		if sqldb.IsUniqueViolation(err) {
			rec.ErrText = err.Error()
			return nil, rec, err
		}
		return nil, nil, err
	}
	db.fillWriteInfo(m, rec, res, nApp)

	// Phase 3: re-insert the old versions as history, closed at t.
	if err := db.insertHistorical(m, oldRows, t, -1, -1); err != nil {
		return nil, nil, err
	}
	rec.Result = stripResult(res, s.Returning, nApp, res.Affected)
	return rec.Result, rec, nil
}

// updatePhases returns the executors of an UPDATE's first two phases:
// the cached parameterized augmentation when the statement has a cached
// handle and the caller's parameter count matches, and per-execution
// literal-baked clones otherwise (the slow path preserves the engine's
// parameter diagnostics).
func (db *DB) updatePhases(s *sqldb.Update, cs *sqldb.CachedStmt, params []sqldb.Value, t, gen int64, m *tableMeta) (runSel, runUpd func() (*sqldb.Result, error)) {
	if cs != nil {
		if a := db.augUpdateFor(m, s, cs); len(params) == a.nStatic {
			ext := extParams(params, a.nStatic, t, gen)
			return func() (*sqldb.Result, error) { return db.raw.ExecCachedOwned(a.sel, ext) },
				func() (*sqldb.Result, error) { return db.raw.ExecCached(a.upd, ext) }
		}
	}
	var userWhere sqldb.Expr
	if s.Where != nil {
		userWhere = s.Where.CloneExpr()
	}
	live := sqldb.And(userWhere, liveWhere(t, gen))
	runSel = func() (*sqldb.Result, error) { return db.raw.ExecStmtOwned(db.physicalSelect(m, live), params) }
	runUpd = func() (*sqldb.Result, error) {
		aug := s.Clone().(*sqldb.Update)
		aug.Set = append(aug.Set, sqldb.Assignment{Column: ColStartTime, Expr: sqldb.Lit(sqldb.Int(t))})
		aug.Where = live
		aug.Returning = returningWithMeta(m, s.Returning)
		return db.raw.ExecStmt(aug, params)
	}
	return runSel, runUpd
}

// capturePreImage records the overwritten value of a mergeable UPDATE:
// exactly one matched row, exactly one SET column, and a text value in
// that column before the write. The pre-image is the merge base online
// repair needs to reconcile a live write with a concurrently repaired
// value; anything wider than one row/column has no well-defined base, so
// it is simply not captured and such writes queue instead of merging.
func (db *DB) capturePreImage(m *tableMeta, s *sqldb.Update, rec *Record, oldRows *sqldb.Result) {
	if len(s.Set) != 1 || len(oldRows.Rows) != 1 {
		return
	}
	for i, c := range oldRows.Columns {
		if c == s.Set[0].Column {
			if v := oldRows.Rows[0][i]; v.Kind == sqldb.KindText {
				rec.PreImage = v.Str
				rec.HasPreImage = true
			}
			return
		}
	}
}

// recordOldPartitions adds the pre-write partition values of the matched
// rows to the record's write set and indexes the events.
func (db *DB) recordOldPartitions(m *tableMeta, rec *Record, oldRows *sqldb.Result) {
	set := NewPartitionSet()
	set.AddAll(rec.WritePartitions)
	colOf := make(map[string]int, len(oldRows.Columns))
	for i, c := range oldRows.Columns {
		colOf[c] = i
	}
	for _, row := range oldRows.Rows {
		if len(m.partCols) == 0 {
			set.Add(WholeTable(m.name))
			m.indexVersionEvent([]Partition{WholeTable(m.name)}, row[colOf[m.rowIDCol]], rec.Time)
			continue
		}
		var rowParts []Partition
		for col := range m.partCols {
			p := Partition{Table: m.name, Column: col, Key: row[colOf[col]].Key()}
			set.Add(p)
			rowParts = append(rowParts, p)
		}
		m.indexVersionEvent(rowParts, row[colOf[m.rowIDCol]], rec.Time)
	}
	rec.WritePartitions = set.Slice()
}

// insertHistorical re-inserts captured physical rows with end_time=t.
// When overrideStartGen/overrideEndGen are >= 0 they replace the captured
// generation columns (used by repair-side flows).
func (db *DB) insertHistorical(m *tableMeta, oldRows *sqldb.Result, t int64, overrideStartGen, overrideEndGen int64) error {
	if len(oldRows.Rows) == 0 {
		return nil
	}
	cols := oldRows.Columns
	colOf := make(map[string]int, len(cols))
	for i, c := range cols {
		colOf[c] = i
	}
	ins := &sqldb.Insert{Table: m.name, Columns: cols}
	for _, row := range oldRows.Rows {
		vals := make([]sqldb.Expr, len(cols))
		for i, v := range row {
			vals[i] = sqldb.Lit(v)
		}
		vals[colOf[ColEndTime]] = sqldb.Lit(sqldb.Int(t))
		if overrideStartGen >= 0 {
			vals[colOf[ColStartGen]] = sqldb.Lit(sqldb.Int(overrideStartGen))
		}
		if overrideEndGen >= 0 {
			vals[colOf[ColEndGen]] = sqldb.Lit(sqldb.Int(overrideEndGen))
		}
		ins.Rows = append(ins.Rows, vals)
	}
	_, err := db.raw.ExecStmt(ins, nil)
	return err
}

func (db *DB) execDelete(s *sqldb.Delete, cs *sqldb.CachedStmt, params []sqldb.Value, t, gen int64, rec *Record, m *tableMeta) (*sqldb.Result, *Record, error) {
	rec.Kind = KindDelete
	rec.Table = s.Table
	rec.ReadPartitions = m.readPartitions(s.Where, params)

	// Deleting is closing the version interval (§4.2): set end_time = t.
	nApp := len(s.Returning)
	var res *sqldb.Result
	var err error
	ran := false
	if cs != nil {
		if a := db.augDeleteFor(m, s, cs); len(params) == a.nStatic {
			res, err = db.raw.ExecCached(a.upd, extParams(params, a.nStatic, t, gen))
			ran = true
		}
	}
	if !ran {
		var userWhere sqldb.Expr
		if s.Where != nil {
			userWhere = s.Where.CloneExpr()
		}
		aug := &sqldb.Update{
			Table:     s.Table,
			Set:       []sqldb.Assignment{{Column: ColEndTime, Expr: sqldb.Lit(sqldb.Int(t))}},
			Where:     sqldb.And(userWhere, liveWhere(t, gen)),
			Returning: returningWithMeta(m, s.Returning),
		}
		res, err = db.raw.ExecStmt(aug, params)
	}
	if err != nil {
		return nil, nil, err
	}
	db.fillWriteInfo(m, rec, res, nApp)
	rec.Result = stripResult(res, s.Returning, nApp, res.Affected)
	return rec.Result, rec, nil
}
