package store

import (
	"fmt"
	"hash/fnv"
	"path/filepath"
	"sync"

	"warp/internal/store/storefs"
)

// A shard is one independent WAL segment chain with its own group-commit
// clock. Appends to different shards contend on nothing but the global
// LSN counter (one atomic add), so table groups mapped to different
// shards log — and fsync — in parallel, the on-disk analog of the
// multi-disk scale-out the ROADMAP asks for.
//
// Cross-shard ordering is preserved logically, not physically: every
// record carries a global LSN assigned under its shard's lock, each
// shard's file order is LSN-monotonic, and recovery merges the per-shard
// streams back into global-LSN order (see Open).
//
// Failure model (docs/persistence.md "Failure model"): write errors
// retry inside walWriter under the store's retry policy; a *failed
// fsync* is poisonous and never retried. After fsync failure the kernel
// may silently have dropped the dirty pages, so a later successful
// fsync of the same file proves nothing about them — the shard
// therefore seals the segment (close without sync, never trust it
// again), bumps its poison epoch so every waiter blocked on that
// segment's durability gets an error instead of a false ack, and starts
// a fresh segment for subsequent appends. The store is notified through
// onFault; the deployment layer reacts with a fence checkpoint that
// re-secures the in-memory state the sealed segment failed to make
// durable (internal/core).
type shard struct {
	id    int
	dir   string
	opts  Options
	fs    storefs.FS
	retry retryPolicy

	// preRotate, when set, runs before the active segment is finalized
	// (which flushes and fsyncs every buffered frame). The store sets it
	// on the metadata shard to first sync the data shards, so a rotation
	// can never make a metadata record durable ahead of the table
	// records it describes. Called with mu held; it may take other
	// shards' locks (the only place shard locks nest, shard 0 → data).
	preRotate func() error
	// onFault reports a storage fault (exhausted write retries, fsync
	// poisoning, a broken segment chain) to the store. May be called
	// with mu held.
	onFault func(error)
	// onSeal records a segment sealed by fsync poisoning: its tail is
	// of unknown durability, so the scrubber must not flag a torn tail
	// there as corruption.
	onSeal func(path string)

	mu       sync.Mutex
	cond     *sync.Cond
	w        *walWriter
	seq      int64 // sequence number of the active segment
	segBase  int64 // value of appended when the active segment opened
	appended int64 // bytes appended to this shard
	synced   int64 // bytes known durable
	syncing  bool  // a group-commit leader is fsyncing outside the lock
	// epoch increments on every fsync poisoning. A durability waiter
	// captures the epoch at entry; seeing it change means the segment
	// holding its record was sealed with the record's durability
	// unknown, and the wait fails with poisonErr rather than falsely
	// acking. (The error can be spuriously pessimistic for a record
	// synced just before the poison — the safe direction.)
	epoch     int64
	poisonErr error
	// broken latches when a replacement segment cannot be opened: the
	// shard can accept no further appends, and only a checkpoint (or
	// degraded mode) can carry the deployment from here.
	broken error
	dead   bool
	closed bool
}

func newShard(id int, dir string, opts Options, startSeq int64) (*shard, error) {
	sh := &shard{
		id: id, dir: dir, opts: opts, seq: startSeq,
		fs:    opts.FS,
		retry: retryPolicy{attempts: opts.RetryAttempts, backoff: opts.RetryBackoff},
	}
	sh.cond = sync.NewCond(&sh.mu)
	w, err := openSegment(sh.fs, segName(dir, id, startSeq), sh.retry)
	if err != nil {
		return nil, err
	}
	sh.w = w
	return sh, nil
}

// append buffers one frame under the shard lock and returns the byte
// offset the caller must wait on for durability. Rotation happens here
// when the active segment crosses SegmentBytes.
func (sh *shard) append(frame []byte) (target int64, err error) {
	if sh.dead || sh.closed {
		return 0, ErrCrashed
	}
	if sh.broken != nil {
		return 0, sh.broken
	}
	if err := sh.w.append(frame); err != nil {
		return 0, err
	}
	sh.appended += int64(frameHeaderLen + len(frame))
	target = sh.appended
	if sh.w.size >= sh.opts.SegmentBytes {
		if err := sh.rotateLocked(); err != nil {
			return 0, err
		}
	}
	return target, nil
}

// waitSyncedLocked blocks until byte offset target is durable, acting as
// the shard's group-commit leader when no sync is in flight. Called with
// sh.mu held.
func (sh *shard) waitSyncedLocked(target int64) error {
	epoch := sh.epoch
	for {
		if sh.dead || sh.closed {
			return ErrCrashed
		}
		if sh.broken != nil {
			return sh.broken
		}
		if sh.epoch != epoch {
			return sh.poisonErr
		}
		if sh.synced >= target {
			return nil
		}
		if sh.syncing {
			sh.cond.Wait()
			continue
		}
		// Leader: flush the shared buffer under the lock (a memory
		// copy), fsync outside it so followers keep appending frames
		// that ride the next sync.
		sh.syncing = true
		appended := sh.appended
		if err := sh.w.flush(); err != nil {
			sh.syncing = false
			sh.cond.Broadcast()
			sh.fault(err)
			return err
		}
		f := sh.w.f
		sh.mu.Unlock()
		err := timedSync(f)
		sh.mu.Lock()
		sh.syncing = false
		if err != nil {
			sh.poisonLocked(err)
			return sh.poisonErr
		}
		if appended > sh.synced {
			sh.synced = appended
		}
		sh.cond.Broadcast()
	}
}

// syncUpTo makes records up to byte extent target durable WITHOUT
// handing the OS anything beyond it: the flush is a prefix flush, so an
// fsync here cannot make later-appended records durable as a side
// effect. This is the primitive Store.syncAll builds its cross-shard
// ordering on. With quiet set, a dead or closed shard is a no-op.
func (sh *shard) syncUpTo(target int64, quiet bool) error {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	epoch := sh.epoch
	for {
		if sh.dead || sh.closed {
			if quiet {
				return nil
			}
			return ErrCrashed
		}
		if sh.broken != nil {
			if quiet {
				return nil
			}
			return sh.broken
		}
		if sh.epoch != epoch {
			return sh.poisonErr
		}
		if sh.synced >= target {
			return nil
		}
		if sh.syncing {
			sh.cond.Wait()
			continue
		}
		sh.syncing = true
		limit := target
		if limit > sh.appended {
			limit = sh.appended
		}
		if err := sh.w.flushTo(limit - sh.segBase); err != nil {
			sh.syncing = false
			sh.cond.Broadcast()
			sh.fault(err)
			return err
		}
		durable := sh.segBase + sh.w.flushed
		f := sh.w.f
		sh.mu.Unlock()
		err := timedSync(f)
		sh.mu.Lock()
		sh.syncing = false
		if err != nil {
			sh.poisonLocked(err)
			return sh.poisonErr
		}
		if durable > sh.synced {
			sh.synced = durable
		}
		sh.cond.Broadcast()
	}
}

// poisonLocked applies the fsync-poisoning rule after a failed fsync:
// seal the active segment (close the descriptor without another sync
// attempt — its flushed-but-unsynced suffix is of unknown durability
// and must never be trusted), bump the poison epoch so blocked waiters
// error out instead of false-acking, and open a fresh segment for
// subsequent appends. Buffered-but-unflushed frames are dropped with
// the seal; the deployment's fault fence re-secures their state from
// memory with a checkpoint. Called with sh.mu held and syncing false.
func (sh *shard) poisonLocked(cause error) {
	fsyncPoisoned.Inc()
	sh.epoch++
	sh.poisonErr = fmt.Errorf("store: shard %d: fsync failed, segment %s sealed: %w",
		sh.id, filepath.Base(sh.w.path), cause)
	sh.w.abandon()
	if sh.onSeal != nil {
		sh.onSeal(sh.w.path)
	}
	sh.segBase = sh.appended
	sh.synced = sh.appended
	sh.seq++
	w, err := openSegment(sh.fs, segName(sh.dir, sh.id, sh.seq), sh.retry)
	if err != nil {
		sh.broken = fmt.Errorf("store: shard %d: no replacement segment after fsync failure: %w", sh.id, err)
	} else {
		sh.w = w
	}
	sh.fault(sh.poisonErr)
	sh.cond.Broadcast()
}

// fault reports a storage fault to the store, if wired.
func (sh *shard) fault(err error) {
	if sh.onFault != nil {
		sh.onFault(err)
	}
}

// rotateLocked finalizes the active segment and starts the next one.
// Called with sh.mu held; waits out an in-flight sync first. Finalizing
// flushes and fsyncs everything buffered, so the preRotate barrier (if
// any) runs first. A finalize failure poisons the segment — the close
// path ends in an fsync, so a failed close leaves the same
// unknown-durability tail a failed group-commit fsync does.
func (sh *shard) rotateLocked() error {
	for sh.syncing {
		sh.cond.Wait()
	}
	if sh.dead || sh.closed {
		return ErrCrashed
	}
	if sh.broken != nil {
		return sh.broken
	}
	if sh.preRotate != nil {
		if err := sh.preRotate(); err != nil {
			return err
		}
	}
	if err := sh.w.close(); err != nil {
		sh.poisonLocked(err)
		return sh.poisonErr
	}
	sh.synced = sh.appended
	sh.segBase = sh.appended
	sh.seq++
	w, err := openSegment(sh.fs, segName(sh.dir, sh.id, sh.seq), sh.retry)
	if err != nil {
		sh.broken = fmt.Errorf("store: shard %d: no segment after rotation: %w", sh.id, err)
		sh.fault(sh.broken)
		return sh.broken
	}
	sh.w = w
	sh.cond.Broadcast()
	return nil
}

// rotate finalizes the active segment for a checkpoint cut and returns
// the finalized segment's sequence number: records in segments after it
// replay over the checkpoint being written.
func (sh *shard) rotate() (finalized int64, err error) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if err := sh.rotateLocked(); err != nil {
		return 0, err
	}
	return sh.seq - 1, nil
}

// activeSegment returns the path of the segment currently accepting
// appends (the scrubber must skip it: its tail is legitimately torn
// until the next sync).
func (sh *shard) activeSegment() string {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.w.path
}

// close flushes, fsyncs, and releases the shard.
func (sh *shard) close() error {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.dead || sh.closed {
		return nil
	}
	for sh.syncing {
		sh.cond.Wait()
	}
	if sh.dead || sh.closed {
		return nil
	}
	sh.closed = true
	if sh.broken != nil {
		sh.w.abandon()
		sh.cond.Broadcast()
		return sh.broken
	}
	var err error
	if sh.synced == sh.appended {
		// Nothing unsynced: skip the redundant final fsync so a disk
		// that died after the last real sync cannot fail a clean close.
		err = sh.w.closeFd()
	} else {
		err = sh.w.close()
	}
	sh.cond.Broadcast()
	return err
}

// crash drops user-space buffers and refuses further writes, exactly as
// a process death would.
func (sh *shard) crash() {
	sh.mu.Lock()
	if sh.dead || sh.closed {
		sh.mu.Unlock()
		return
	}
	sh.dead = true
	sh.w.abandon()
	sh.cond.Broadcast()
	sh.mu.Unlock()
}

// shardOf routes a table-group key to a shard index. The empty group —
// metadata records: history actions, visit logs, GC horizons, repair
// intents — always lands on shard 0, so the graph's append order is
// preserved by shard-0 file order alone. Named groups spread over shards
// 1..n-1 via a stable hash, keeping the metadata shard contention-free.
// A custom router (Options.ShardOf) that returns an out-of-range index
// for a group it does not recognize falls back to shard 0, which is
// always safe: routing is a performance decision, never a correctness
// one, because recovery merges all shards by global LSN.
func (s *Store) shardOf(group string) int {
	n := len(s.shards)
	if n == 1 || group == "" {
		return 0
	}
	if s.opts.ShardOf != nil {
		if i := s.opts.ShardOf(group); i >= 0 && i < n {
			return i
		}
		return 0
	}
	h := fnv.New32a()
	h.Write([]byte(group))
	return 1 + int(h.Sum32())%(n-1)
}

// ShardFor reports which shard a group key routes to, for tests and
// operational introspection.
func (s *Store) ShardFor(group string) int { return s.shardOf(group) }

// segName formats a shard segment filename: wal-<shard>-<seq>.log.
func segName(dir string, id int, seq int64) string {
	return filepath.Join(dir, fmt.Sprintf("wal-%02d-%08d.log", id, seq))
}
