package ttdb

// Online-repair support (docs/repair.md "Online repair"): the database
// half of the core's partition-scoped coexistence. During repair, live
// writes keep executing in the current generation; the core's admission
// gate needs each statement's partition footprint to decide whether a
// write collides with the repair frontier, and the replay loop needs a
// way to three-way merge a mergeable live UPDATE with the repaired value
// of the same row instead of letting last-writer-wins discard one side.

import (
	"warp/internal/sqldb"
)

// StmtPartitions derives the partition footprint of one SQL statement
// without executing it: the partitions an admission gate compares
// against in-flight repair work. It reports the touched partitions,
// whether the statement is a write, and a parse error if any. A nil
// partition slice with ok=true means the statement's footprint could
// not be bounded (DDL, unpartitionable WHERE) and must be treated as
// conflicting with everything on its table; DDL returns wide=true with
// no table.
func (db *DB) StmtPartitions(src string, params []sqldb.Value) (parts []Partition, isWrite bool, err error) {
	cs, err := db.stmts.Get(src)
	if err != nil {
		return nil, false, err
	}
	var table string
	switch s := cs.Stmt.(type) {
	case *sqldb.Select:
		table = s.Table
	case *sqldb.Insert:
		table = s.Table
		isWrite = true
	case *sqldb.Update:
		table = s.Table
		isWrite = true
	case *sqldb.Delete:
		table = s.Table
		isWrite = true
	default:
		// DDL: footprint is every table; callers treat nil as "wide".
		return nil, true, nil
	}
	if table == "" {
		return nil, false, nil
	}
	m, err := db.meta(table)
	if err != nil {
		return nil, isWrite, err
	}
	sc := m.scopeForStmt(cs.Stmt, params)
	if sc.whole || m.lockCol == "" {
		return []Partition{WholeTable(table)}, isWrite, nil
	}
	parts = make([]Partition, 0, len(sc.keys))
	for _, k := range sc.keys {
		parts = append(parts, Partition{Table: table, Column: m.lockCol, Key: k})
	}
	return parts, isWrite, nil
}

// UpdateMergeInfo locates the mergeable text of a single-row UPDATE: the
// one SET column and the parameter index carrying its new value.
type UpdateMergeInfo struct {
	Table    string
	Column   string
	ParamIdx int
}

// MergeableUpdate reports whether a recorded write has the shape online
// repair can three-way merge: a successful single-row UPDATE of exactly
// one SET column whose new value arrived as a text parameter. The
// caller additionally requires a captured pre-image (the merge base)
// the first time it merges; the shape check alone also matches the
// re-recorded form of an already-merged write, which is how a memoized
// merge finds its parameter slot on later re-executions. Everything
// else falls back to the replay loop's last-writer-wins re-execution.
func (db *DB) MergeableUpdate(rec *Record) (UpdateMergeInfo, bool) {
	if rec.Kind != KindUpdate || rec.ErrText != "" || len(rec.WriteRowIDs) != 1 {
		return UpdateMergeInfo{}, false
	}
	cs, err := db.stmts.Get(rec.SQL)
	if err != nil {
		return UpdateMergeInfo{}, false
	}
	upd, ok := cs.Stmt.(*sqldb.Update)
	if !ok || len(upd.Set) != 1 {
		return UpdateMergeInfo{}, false
	}
	p, ok := upd.Set[0].Expr.(*sqldb.Param)
	if !ok || p.Index >= len(rec.Params) || rec.Params[p.Index].Kind != sqldb.KindText {
		return UpdateMergeInfo{}, false
	}
	return UpdateMergeInfo{Table: rec.Table, Column: upd.Set[0].Column, ParamIdx: p.Index}, true
}

// RepairValueBefore reads the repaired value of the row a mergeable
// UPDATE wrote, as of just before the update's logical time, in the
// repair generation — the "their side" of the three-way merge (the
// pre-image is the base, the live parameter is "ours"). Returns ok=false
// outside repair, when the row has no version live at that point in the
// repair generation, or when the value is not text.
func (db *DB) RepairValueBefore(info UpdateMergeInfo, rowID sqldb.Value, t int64) (string, bool) {
	st, err := db.repairSnapshot()
	if err != nil {
		return "", false
	}
	m, err := db.meta(info.Table)
	if err != nil {
		return "", false
	}
	sc := m.effectiveScope(db, db.scopeForRows(m, []sqldb.Value{rowID}))
	m.locks.lock(sc)
	defer m.locks.unlock(sc)
	sel := &sqldb.Select{
		Items: []sqldb.SelectItem{{Expr: sqldb.Col(info.Column)}},
		Table: m.name,
		Where: sqldb.And(sqldb.Eq(m.rowIDCol, rowID), liveWhere(t-1, st.next)),
	}
	res, err := db.raw.ExecStmt(sel, nil)
	if err != nil || len(res.Rows) != 1 {
		return "", false
	}
	v := res.Rows[0][0]
	if v.Kind != sqldb.KindText {
		return "", false
	}
	return v.Str, true
}
