package app

import (
	"fmt"
	"strings"
	"testing"

	"warp/internal/httpd"
	"warp/internal/sqldb"
	"warp/internal/ttdb"
	"warp/internal/vclock"
)

func newRuntime(t *testing.T) (*Runtime, *ttdb.DB) {
	t.Helper()
	db := ttdb.Open(&vclock.Clock{})
	if err := db.Annotate("notes", ttdb.TableSpec{RowIDColumn: "id", PartitionColumns: []string{"id"}}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := db.Exec("CREATE TABLE notes (id INTEGER PRIMARY KEY, body TEXT)"); err != nil {
		t.Fatal(err)
	}
	return NewRuntime(db, 42), db
}

func TestRunRecordsEverything(t *testing.T) {
	rt, _ := newRuntime(t)
	err := rt.Register("save.php", Version{Entry: func(c *Ctx) *httpd.Response {
		id := c.Req.Param("id")
		tok := c.Token("save.csrf")
		c.MustQuery("INSERT INTO notes (id, body) VALUES (?, ?)",
			sqldb.Int(1), sqldb.Text(id+"/"+tok))
		return httpd.HTML("saved " + tok)
	}})
	if err != nil {
		t.Fatal(err)
	}
	req := httpd.NewRequest("POST", "/save.php?id=n1")
	rec, err := rt.Run("save.php", req, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Resp.Status != 200 || !strings.HasPrefix(rec.Resp.Body, "saved ") {
		t.Fatalf("resp = %+v", rec.Resp)
	}
	if len(rec.Queries) != 1 || rec.Queries[0].Kind != ttdb.KindInsert {
		t.Fatalf("queries = %+v", rec.Queries)
	}
	if len(rec.NonDet) != 1 || rec.NonDet[0].Site != "save.csrf" {
		t.Fatalf("nondet = %+v", rec.NonDet)
	}
	if len(rec.FilesLoaded) != 1 || rec.FilesLoaded[0] != "save.php" {
		t.Fatalf("files = %v", rec.FilesLoaded)
	}
	if rec.ApproxLogBytes() <= 0 || rec.DBLogBytes() <= 0 {
		t.Fatal("log accounting empty")
	}
}

func TestNonDetReplayMatchesBySiteInOrder(t *testing.T) {
	rt, _ := newRuntime(t)
	if err := rt.Register("f.php", Version{Entry: func(c *Ctx) *httpd.Response {
		a := c.Token("site.a")
		b := c.Token("site.b")
		a2 := c.Token("site.a")
		return httpd.HTML(a + "," + b + "," + a2)
	}}); err != nil {
		t.Fatal(err)
	}
	req := httpd.NewRequest("GET", "/f.php")
	orig, err := rt.Run("f.php", req, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	replay, err := rt.Run("f.php", req, nil, orig)
	if err != nil {
		t.Fatal(err)
	}
	if replay.Resp.Body != orig.Resp.Body {
		t.Fatalf("replay diverged: %q vs %q", replay.Resp.Body, orig.Resp.Body)
	}
	// A fresh run without the original must differ (tokens are random).
	fresh, err := rt.Run("f.php", req, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if fresh.Resp.Body == orig.Resp.Body {
		t.Fatal("fresh run should generate new tokens")
	}
}

func TestNonDetHeuristicMissStillRuns(t *testing.T) {
	rt, _ := newRuntime(t)
	if err := rt.Register("f.php", Version{Entry: func(c *Ctx) *httpd.Response {
		return httpd.HTML(c.Token("only.original"))
	}}); err != nil {
		t.Fatal(err)
	}
	orig, err := rt.Run("f.php", httpd.NewRequest("GET", "/f.php"), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Patch the file so it asks for a *different* site: no original
	// counterpart exists, yet re-execution proceeds (§3.3: strictly an
	// optimization).
	if err := rt.Patch("f.php", Version{Entry: func(c *Ctx) *httpd.Response {
		return httpd.HTML(c.Token("brand.new.site"))
	}, Note: "changes nondet site"}); err != nil {
		t.Fatal(err)
	}
	replay, err := rt.Run("f.php", httpd.NewRequest("GET", "/f.php"), nil, orig)
	if err != nil {
		t.Fatal(err)
	}
	if replay.Resp.Status != 200 || replay.Resp.Body == "" {
		t.Fatalf("heuristic miss broke replay: %+v", replay.Resp)
	}
}

func TestIncludeRecordsDependency(t *testing.T) {
	rt, _ := newRuntime(t)
	type helpers struct{ Banner func() string }
	if err := rt.Register("common.php", Version{Lib: helpers{Banner: func() string { return "WIKI" }}}); err != nil {
		t.Fatal(err)
	}
	if err := rt.Register("page.php", Version{Entry: func(c *Ctx) *httpd.Response {
		lib, err := c.Include("common.php")
		if err != nil {
			panic(err)
		}
		h := lib.(helpers)
		_, _ = c.Include("common.php") // double include recorded once
		return httpd.HTML(h.Banner())
	}}); err != nil {
		t.Fatal(err)
	}
	rec, err := rt.Run("page.php", httpd.NewRequest("GET", "/page.php"), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.FilesLoaded) != 2 || rec.FilesLoaded[1] != "common.php" {
		t.Fatalf("files loaded = %v", rec.FilesLoaded)
	}
	if rec.Resp.Body != "WIKI" {
		t.Fatalf("body = %q", rec.Resp.Body)
	}
}

func TestPatchChangesBehavior(t *testing.T) {
	rt, _ := newRuntime(t)
	if err := rt.Register("echo.php", Version{Entry: func(c *Ctx) *httpd.Response {
		return httpd.HTML(c.Req.Param("msg")) // vulnerable: no escaping
	}}); err != nil {
		t.Fatal(err)
	}
	req := httpd.NewRequest("GET", "/echo.php?msg=%3Cscript%3E")
	rec, _ := rt.Run("echo.php", req, nil, nil)
	if rec.Resp.Body != "<script>" {
		t.Fatalf("vulnerable body = %q", rec.Resp.Body)
	}
	if err := rt.Patch("echo.php", Version{Entry: func(c *Ctx) *httpd.Response {
		return httpd.HTML(strings.ReplaceAll(c.Req.Param("msg"), "<", "&lt;"))
	}, Note: "escape output"}); err != nil {
		t.Fatal(err)
	}
	if rt.FileVersion("echo.php") != 2 {
		t.Fatalf("version = %d", rt.FileVersion("echo.php"))
	}
	rec2, _ := rt.Run("echo.php", req, nil, orig0(rec))
	if strings.Contains(rec2.Resp.Body, "<script>") {
		t.Fatalf("patched body still vulnerable: %q", rec2.Resp.Body)
	}
}

// orig0 passes the original record through for replay.
func orig0(r *RunRecord) *RunRecord { return r }

func TestPanicBecomes500(t *testing.T) {
	rt, _ := newRuntime(t)
	if err := rt.Register("bad.php", Version{Entry: func(c *Ctx) *httpd.Response {
		panic("kaboom")
	}}); err != nil {
		t.Fatal(err)
	}
	rec, err := rt.Run("bad.php", httpd.NewRequest("GET", "/bad.php"), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !rec.Failed || rec.Resp.Status != 500 {
		t.Fatalf("panic handling: %+v", rec.Resp)
	}
}

func TestInjectedQueryFunc(t *testing.T) {
	rt, db := newRuntime(t)
	if err := rt.Register("q.php", Version{Entry: func(c *Ctx) *httpd.Response {
		res := c.MustQuery("SELECT COUNT(*) FROM notes")
		return httpd.HTML(fmt.Sprintf("%d", res.FirstValue().AsInt()))
	}}); err != nil {
		t.Fatal(err)
	}
	called := 0
	qf := func(sql string, params []sqldb.Value) (*sqldb.Result, *ttdb.Record, error) {
		called++
		return db.Exec(sql, params...)
	}
	rec, err := rt.Run("q.php", httpd.NewRequest("GET", "/q.php"), qf, nil)
	if err != nil {
		t.Fatal(err)
	}
	if called != 1 {
		t.Fatalf("query func called %d times", called)
	}
	if rec.Resp.Body != "0" {
		t.Fatalf("body = %q", rec.Resp.Body)
	}
}

func TestRoutes(t *testing.T) {
	rt, _ := newRuntime(t)
	if err := rt.Register("index.php", Version{Entry: func(c *Ctx) *httpd.Response { return httpd.HTML("hi") }}); err != nil {
		t.Fatal(err)
	}
	rt.Mount("/index.php", "index.php")
	rt.Mount("/", "index.php")
	if f, ok := rt.RouteOf("/"); !ok || f != "index.php" {
		t.Fatalf("route / = %q %v", f, ok)
	}
	if _, ok := rt.RouteOf("/nope"); ok {
		t.Fatal("unexpected route")
	}
}

func TestRegisterDuplicateAndPatchUnknown(t *testing.T) {
	rt, _ := newRuntime(t)
	if err := rt.Register("a.php", Version{}); err != nil {
		t.Fatal(err)
	}
	if err := rt.Register("a.php", Version{}); err == nil {
		t.Fatal("duplicate register must fail")
	}
	if err := rt.Patch("nope.php", Version{}); err == nil {
		t.Fatal("patch of unknown file must fail")
	}
}
