package dom

import (
	"strings"
	"testing"
)

func TestParseSimpleDocument(t *testing.T) {
	doc := Parse(`<html><head><title>T</title></head><body><p id="x">hello <b>world</b></p></body></html>`)
	html := doc.ElementsByTag("html")
	if len(html) != 1 {
		t.Fatalf("html elements = %d", len(html))
	}
	p := doc.ByID("x")
	if p == nil || p.Tag != "p" {
		t.Fatalf("ByID: %+v", p)
	}
	if got := p.InnerText(); got != "hello world" {
		t.Fatalf("inner text = %q", got)
	}
	title := doc.ElementsByTag("title")[0]
	if title.InnerText() != "T" {
		t.Fatalf("title = %q", title.InnerText())
	}
}

func TestParseAttributes(t *testing.T) {
	doc := Parse(`<input type="text" name='user' value="a&amp;b" disabled>`)
	in := doc.ElementsByTag("input")[0]
	if v := in.AttrOr("type", ""); v != "text" {
		t.Fatalf("type = %q", v)
	}
	if v := in.AttrOr("name", ""); v != "user" {
		t.Fatalf("name = %q", v)
	}
	if v := in.AttrOr("value", ""); v != "a&b" {
		t.Fatalf("entity in attr: %q", v)
	}
	if _, ok := in.Attr("disabled"); !ok {
		t.Fatal("bare attribute missing")
	}
}

func TestParseScriptRawText(t *testing.T) {
	doc := Parse(`<body><script>if (a < b && c > d) { fire(); }</script></body>`)
	s := doc.ElementsByTag("script")[0]
	if got := s.InnerText(); !strings.Contains(got, "a < b && c > d") {
		t.Fatalf("script body mangled: %q", got)
	}
	// Script bodies round-trip unescaped.
	if r := doc.Render(); !strings.Contains(r, "a < b && c > d") {
		t.Fatalf("render mangled script: %q", r)
	}
}

func TestParseTextareaEntities(t *testing.T) {
	doc := Parse(`<textarea name="content">&lt;evil&gt; text</textarea>`)
	ta := doc.ElementsByTag("textarea")[0]
	if got := ta.InnerText(); got != "<evil> text" {
		t.Fatalf("textarea content = %q", got)
	}
	// Rendering re-escapes.
	if r := doc.Render(); !strings.Contains(r, "&lt;evil&gt;") {
		t.Fatalf("render must escape textarea: %q", r)
	}
}

func TestParseMismatchedAndUnclosed(t *testing.T) {
	doc := Parse(`<div><p>one<p>two</div><span>tail`)
	if n := len(doc.ElementsByTag("p")); n != 2 {
		t.Fatalf("p count = %d", n)
	}
	if n := len(doc.ElementsByTag("span")); n != 1 {
		t.Fatalf("span count = %d", n)
	}
	// Stray close tag is dropped.
	doc2 := Parse(`<div>hello</b></div>`)
	if doc2.ElementsByTag("div")[0].InnerText() != "hello" {
		t.Fatal("stray close tag corrupted tree")
	}
}

func TestParseCommentsAndDoctype(t *testing.T) {
	doc := Parse(`<!DOCTYPE html><!-- secret --><p>visible</p>`)
	if got := doc.InnerText(); got != "visible" {
		t.Fatalf("text = %q", got)
	}
}

func TestRenderParseRoundTrip(t *testing.T) {
	src := `<html><body><div class="main"><a href="/wiki?p=Main">Main</a><br/><form action="/edit" method="post"><input type="text" name="title" value="x"/><textarea name="body">line1
line2 &amp; more</textarea></form></div></body></html>`
	doc := Parse(src)
	rendered := doc.Render()
	doc2 := Parse(rendered)
	if doc2.Render() != rendered {
		t.Fatalf("render not a fixed point:\n1: %s\n2: %s", rendered, doc2.Render())
	}
	// Semantics preserved.
	ta := doc2.ElementsByTag("textarea")[0]
	if got := ta.InnerText(); got != "line1\nline2 & more" {
		t.Fatalf("textarea after round trip: %q", got)
	}
}

func TestFormValues(t *testing.T) {
	doc := Parse(`<form>
		<input type="text" name="user" value="alice"/>
		<input type="hidden" name="token" value="tok123"/>
		<input type="checkbox" name="opt" value="on" checked/>
		<input type="checkbox" name="unchecked" value="on"/>
		<input type="submit" name="go" value="Go"/>
		<textarea name="body">text here</textarea>
		<select name="lang"><option value="en" selected>English</option><option value="de">German</option></select>
	</form>`)
	form := doc.ElementsByTag("form")[0]
	vals := form.FormValues()
	want := map[string]string{
		"user": "alice", "token": "tok123", "opt": "on", "body": "text here", "lang": "en",
	}
	for k, v := range want {
		if vals[k] != v {
			t.Errorf("form[%q] = %q, want %q", k, vals[k], v)
		}
	}
	if _, ok := vals["unchecked"]; ok {
		t.Error("unchecked checkbox must not submit")
	}
	if _, ok := vals["go"]; ok {
		t.Error("submit button must not submit as value")
	}
}

func TestXPathRoundTrip(t *testing.T) {
	doc := Parse(`<html><body><div><p>a</p><p>b</p><form><input name="x"/><textarea name="y"></textarea></form></div><div><p>c</p></div></body></html>`)
	var targets []*Node
	doc.Walk(func(n *Node) bool {
		if n.Type == ElementNode && n.Tag != "#document" {
			targets = append(targets, n)
		}
		return true
	})
	if len(targets) < 8 {
		t.Fatalf("few targets: %d", len(targets))
	}
	for _, n := range targets {
		path := PathOf(n)
		if path == "" {
			t.Fatalf("no path for %s", n.Tag)
		}
		if got := Resolve(doc, path); got != n {
			t.Fatalf("resolve(%q) = %v, want original %s", path, got, n.Tag)
		}
	}
	// Second p in first div has index 2.
	p2 := doc.ElementsByTag("p")[1]
	if path := PathOf(p2); !strings.Contains(path, "p[2]") {
		t.Fatalf("positional index missing: %q", path)
	}
}

func TestXPathResolveOnChangedPage(t *testing.T) {
	// The page changed (different text, removed script) but the form kept
	// its structural position: the path still resolves — the property
	// DOM-level replay relies on (§5).
	orig := Parse(`<html><body><div id="content">old text<script>evil()</script></div><form><textarea name="body">v1</textarea></form></body></html>`)
	ta := orig.ElementsByTag("textarea")[0]
	path := PathOf(ta)

	repaired := Parse(`<html><body><div id="content">new clean text</div><form><textarea name="body">v2</textarea></form></body></html>`)
	got := Resolve(repaired, path)
	if got == nil || got.Tag != "textarea" {
		t.Fatalf("replay target lost after page change: %v", got)
	}
	// A page missing the form does not resolve: replay must flag a
	// conflict.
	gutted := Parse(`<html><body><p>page deleted</p></body></html>`)
	if Resolve(gutted, path) != nil {
		t.Fatal("path must not resolve on gutted page")
	}
}

func TestCloneIsDeepAndDetached(t *testing.T) {
	doc := Parse(`<div><p id="a">x</p></div>`)
	clone := doc.Clone()
	clone.ByID("a").SetText("changed")
	if doc.ByID("a").InnerText() != "x" {
		t.Fatal("clone shares children")
	}
	if clone.Parent != nil {
		t.Fatal("clone must be detached")
	}
}

func TestEscapeUnescape(t *testing.T) {
	cases := []string{"", "plain", `<script>alert("x&y")</script>`, "a&amp;b", "quote'apos"}
	for _, s := range cases {
		if got := Unescape(Escape(s)); got != s {
			t.Errorf("Unescape(Escape(%q)) = %q", s, got)
		}
		if got := Unescape(EscapeAttr(s)); got != s {
			t.Errorf("Unescape(EscapeAttr(%q)) = %q", s, got)
		}
	}
	if Escape("<b>") != "&lt;b&gt;" {
		t.Fatal("Escape broken")
	}
}

func TestRemoveAndSetAttr(t *testing.T) {
	doc := Parse(`<div><span id="s">x</span></div>`)
	s := doc.ByID("s")
	s.SetAttr("class", "hot")
	s.SetAttr("class", "cold")
	if v, _ := s.Attr("class"); v != "cold" {
		t.Fatalf("SetAttr replace: %q", v)
	}
	s.Remove()
	if doc.ByID("s") != nil {
		t.Fatal("Remove failed")
	}
	if len(doc.ElementsByTag("div")[0].Children) != 0 {
		t.Fatal("parent keeps removed child")
	}
}
